//! The discrete-event simulation engine (paper §III-C).
//!
//! XMTSim is a *discrete-event* (DE) simulator, not a discrete-time one:
//! the main loop pops the next event from a time-ordered event list and
//! notifies the actor that scheduled it, so simulated time advances in
//! irregular jumps instead of polling every component every cycle
//! (paper Fig. 5b vs Fig. 5a).
//!
//! Two entry points are provided:
//!
//! * [`Scheduler`] — the bare event list used by the production
//!   cycle-accurate model. Events carry an arbitrary payload type; the
//!   simulation loop lives with the model, which plays the role of one
//!   large *macro-actor* (see below) for each component class.
//! * [`actor`] — a faithful port of the paper's actor framework
//!   (`Actor::notify` callbacks, macro-actors that iterate many components
//!   per notification). It exists both as a teaching artifact and to
//!   reproduce the paper's macro-actor threshold experiment (§III-D:
//!   grouping components into a macro-actor wins once the event rate
//!   passes a threshold — ~800 events/cycle in the paper's measurement).
//!
//! # Event-list organization
//!
//! The event list is the simulator's hottest data structure: the paper
//! attributes up to 60% of host time to the ICN model (§III-D), and most
//! of that is event-list traffic; MGSim and gem5 both abandoned binary
//! heaps for bucketed designs for the same reason. [`Scheduler`] is a
//! **two-level calendar queue**:
//!
//! * a *near horizon* of [`N_BUCKETS`] per-tick buckets, each covering
//!   [`BUCKET_WIDTH_PS`] picoseconds (one default clock period), arranged
//!   as a ring indexed by `time >> BUCKET_SHIFT`. Insertion is an O(1)
//!   append; a bucket is sorted at most once, lazily, when the window
//!   reaches it (appends that arrive already in key order never trigger a
//!   sort at all);
//! * a *far-future overflow* min-heap for events beyond the near window,
//!   drained back into buckets as the window advances.
//!
//! Events are totally ordered by `(time, priority, seq)`, so the popping
//! order — including the deterministic FIFO tie-break — is bit-identical
//! to the original binary-heap implementation, which is preserved in
//! [`baseline`] as the differential-testing oracle and bench baseline.

pub mod actor;
pub mod baseline;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in picoseconds.
///
/// Clock domains convert their cycle counts to picoseconds through their
/// current period, which lets the activity-plug-in API retune domain
/// frequencies mid-run (paper §III-B) without rescaling history.
pub type Time = u64;

/// Scheduling priority for events that share a timestamp. Lower runs
/// first. This implements the paper's two-phase clock-cycle mechanism:
/// components first *negotiate* transfers, then *transfer* packages, and
/// the priority scheme keeps the phase order consistent in every cycle.
pub type Priority = u8;

/// Priority of the negotiate phase (runs first within a timestamp).
pub const PRI_NEGOTIATE: Priority = 0;
/// Priority of the transfer phase.
pub const PRI_TRANSFER: Priority = 1;
/// Default priority for ordinary events.
pub const PRI_DEFAULT: Priority = 2;
/// Priority of sampling/observation events (run after state settles).
pub const PRI_SAMPLE: Priority = 3;

/// log2 of the bucket width: 1024 ps per bucket, about one cycle of the
/// default 1000 ps clock domains, so one bucket holds one cycle's burst.
const BUCKET_SHIFT: u32 = 10;
/// Width of one near-horizon bucket in picoseconds.
pub const BUCKET_WIDTH_PS: Time = 1 << BUCKET_SHIFT;
/// Buckets in the near horizon; the window covers
/// `N_BUCKETS * BUCKET_WIDTH_PS` ≈ 256 cycles ahead of the current time,
/// comfortably past the deepest modeled latency (a DRAM round trip).
pub const N_BUCKETS: usize = 256;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: Time,
    priority: Priority,
    seq: u64,
}

/// One near-horizon bucket: events of a single page (`time >> BUCKET_SHIFT`
/// value), drained front-to-back through a cursor so popping never shifts
/// the vector.
#[derive(Debug)]
struct Bucket {
    items: Vec<(Key, usize)>,
    /// Entries before `head` have been popped.
    head: usize,
    /// Whether `items` is ascending by key. Kept `true` incrementally for
    /// in-order appends; out-of-order appends to a future bucket just
    /// clear it and the bucket is sorted once when the window arrives.
    /// Invariant: a partially drained bucket (`head > 0`) is sorted.
    sorted: bool,
}

impl Bucket {
    const fn new() -> Self {
        Bucket { items: Vec::new(), head: 0, sorted: true }
    }

    #[inline]
    fn ensure_sorted(&mut self) {
        if !self.sorted {
            // `head > 0` implies sorted, so an unsorted bucket is undrained
            // and the whole vector can be sorted. Keys are unique (seq), so
            // an unstable sort yields the exact total order.
            debug_assert_eq!(self.head, 0);
            self.items.sort_unstable();
            self.sorted = true;
        }
    }
}

/// A time/priority-ordered event list with deterministic FIFO tie-breaking,
/// organized as a two-level calendar queue (see the module docs).
///
/// Determinism matters: checkpointing (paper §III-E) and the verification
/// of the cycle-accurate model against the functional model both rely on
/// identical runs producing identical event orders.
#[derive(Debug)]
pub struct Scheduler<E> {
    /// Ring of near-horizon buckets; page `p` lives at `p % N_BUCKETS`.
    buckets: Vec<Bucket>,
    /// First page the near window covers; equals `now >> BUCKET_SHIFT`
    /// after every pop, so `schedule_at`'s `time >= now` assertion also
    /// guarantees no event lands before the window.
    cur_page: u64,
    /// Events currently held in the near-horizon buckets.
    near_pending: usize,
    /// Far-future events (page at or beyond `cur_page + N_BUCKETS`).
    overflow: BinaryHeap<Reverse<(Key, usize)>>,
    payloads: Vec<Option<E>>,
    free: Vec<usize>,
    now: Time,
    seq: u64,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            buckets: (0..N_BUCKETS).map(|_| Bucket::new()).collect(),
            cur_page: 0,
            near_pending: 0,
            overflow: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.near_pending + self.overflow.len()
    }

    #[inline]
    fn alloc_slot(&mut self, event: E) -> usize {
        match self.free.pop() {
            Some(s) => {
                self.payloads[s] = Some(event);
                s
            }
            None => {
                self.payloads.push(Some(event));
                self.payloads.len() - 1
            }
        }
    }

    #[inline]
    fn take_payload(&mut self, slot: usize) -> E {
        let ev = self.payloads[slot].take().expect("event slot already taken");
        self.free.push(slot);
        ev
    }

    /// Insert into the near-horizon bucket for `page`.
    fn push_near(&mut self, page: u64, key: Key, slot: usize) {
        let is_current = page == self.cur_page;
        let b = &mut self.buckets[(page % N_BUCKETS as u64) as usize];
        match b.items.last() {
            None => {
                b.head = 0;
                b.sorted = true;
                b.items.push((key, slot));
            }
            // Common case: keys arrive in ascending order (monotone seq,
            // same or later time) — O(1) append keeps the bucket sorted.
            Some(&(last, _)) if b.sorted && last <= key => b.items.push((key, slot)),
            _ if is_current => {
                // Out-of-order arrival into the bucket being drained (e.g.
                // a same-timestamp event of an earlier phase): a binary
                // insert preserves the partially-drained sorted invariant
                // without re-sorting.
                b.ensure_sorted();
                let pos = b.head + b.items[b.head..].partition_point(|&(k, _)| k < key);
                b.items.insert(pos, (key, slot));
            }
            _ => {
                // Future bucket: append now, sort once when the window
                // reaches it.
                b.items.push((key, slot));
                b.sorted = false;
            }
        }
        self.near_pending += 1;
    }

    /// Schedule `event` at absolute time `time` with `priority`.
    ///
    /// Scheduling in the past panics: actors may only schedule at or after
    /// the current time, exactly like the paper's DE scheduler.
    pub fn schedule_at(&mut self, time: Time, priority: Priority, event: E) {
        assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let slot = self.alloc_slot(event);
        let key = Key { time, priority, seq: self.seq };
        self.seq += 1;
        let page = time >> BUCKET_SHIFT;
        if page >= self.cur_page + N_BUCKETS as u64 {
            self.overflow.push(Reverse((key, slot)));
        } else {
            self.push_near(page, key, slot);
        }
    }

    /// Schedule `event` `delay` picoseconds from now with default priority.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, PRI_DEFAULT, event);
    }

    /// Schedule with an externally assigned sequence number.
    ///
    /// The parallel engine runs one scheduler per shard but keeps a single
    /// *global* insertion counter, so the cross-shard merge of a
    /// `(time, priority)` group — ordered by these seqs — reproduces the
    /// exact FIFO order a single sequential queue would have produced.
    /// The caller must hand each scheduler strictly increasing seqs (a
    /// shared monotone counter does this naturally); the internal counter
    /// is bumped past `seq` so mixing in [`schedule_at`](Self::schedule_at)
    /// calls later cannot collide.
    pub fn schedule_at_seq(&mut self, time: Time, priority: Priority, seq: u64, event: E) {
        assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        debug_assert!(seq >= self.seq, "external seq must be monotone per scheduler");
        let slot = self.alloc_slot(event);
        let key = Key { time, priority, seq };
        self.seq = seq + 1;
        let page = time >> BUCKET_SHIFT;
        if page >= self.cur_page + N_BUCKETS as u64 {
            self.overflow.push(Reverse((key, slot)));
        } else {
            self.push_near(page, key, slot);
        }
    }

    /// [`requeue`](Self::requeue) with an externally assigned sequence
    /// number (see [`schedule_at_seq`](Self::schedule_at_seq)).
    pub fn requeue_seq(&mut self, time: Time, priority: Priority, seq: u64, event: E) {
        self.schedule_at_seq(time, priority, seq, event);
        self.processed -= 1;
    }

    /// Pull every overflow event that now fits into the near window.
    fn refill_from_overflow(&mut self) {
        let limit = self.cur_page + N_BUCKETS as u64;
        while let Some(&Reverse((key, _))) = self.overflow.peek() {
            let page = key.time >> BUCKET_SHIFT;
            if page >= limit {
                break;
            }
            let Reverse((key, slot)) = self.overflow.pop().expect("peeked");
            self.push_near(page, key, slot);
        }
    }

    /// Find, pop, and return the globally smallest key, advancing the
    /// window as needed. Does not touch `now`/`processed`.
    fn pop_key(&mut self) -> Option<(Key, usize)> {
        if self.near_pending == 0 {
            // Near window exhausted: jump straight to the earliest
            // far-future page (or report empty).
            let &Reverse((key, _)) = self.overflow.peek()?;
            self.cur_page = key.time >> BUCKET_SHIFT;
            self.refill_from_overflow();
        }
        loop {
            let idx = (self.cur_page % N_BUCKETS as u64) as usize;
            if self.buckets[idx].items.is_empty() {
                // Advancing one page extends the window by one page at the
                // far end; any overflow events for it move in.
                self.cur_page += 1;
                self.refill_from_overflow();
                continue;
            }
            let b = &mut self.buckets[idx];
            b.ensure_sorted();
            let (key, slot) = b.items[b.head];
            b.head += 1;
            if b.head == b.items.len() {
                b.items.clear();
                b.head = 0;
            }
            self.near_pending -= 1;
            return Some((key, slot));
        }
    }

    /// Pop the next event, advancing simulated time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let (key, slot) = self.pop_key()?;
        self.now = key.time;
        self.processed += 1;
        Some((key.time, self.take_payload(slot)))
    }

    /// Batch-drain one `(time, priority)` group: pop *every* currently
    /// pending event sharing the next event's timestamp and priority into
    /// `out` (cleared first), in FIFO order, advancing simulated time once.
    /// Returns the group's `(time, priority)`, or `None` when empty.
    ///
    /// This is the macro-actor interface of the event list: the two-phase
    /// negotiate/transfer cycle of the model pops one *group* per phase
    /// instead of one event at a time, turning N heap pops per cycle into
    /// one bucket walk. Events scheduled into the same group *while the
    /// batch is being handled* are not lost — they have larger sequence
    /// numbers than anything drained here, so the next call returns them,
    /// exactly as repeated single pops would.
    pub fn pop_cycle(&mut self, out: &mut Vec<E>) -> Option<(Time, Priority)> {
        out.clear();
        let (key, slot) = self.pop_key()?;
        self.now = key.time;
        self.processed += 1;
        let ev = self.take_payload(slot);
        out.push(ev);
        // The rest of the group is contiguous at the head of the current
        // bucket: same time ⟹ same page, and the bucket is sorted.
        let idx = (self.cur_page % N_BUCKETS as u64) as usize;
        loop {
            let b = &mut self.buckets[idx];
            if b.items.is_empty() {
                break;
            }
            let (k, s) = b.items[b.head];
            if k.time != key.time || k.priority != key.priority {
                break;
            }
            b.head += 1;
            if b.head == b.items.len() {
                b.items.clear();
                b.head = 0;
            }
            self.near_pending -= 1;
            self.processed += 1;
            let ev = self.take_payload(s);
            out.push(ev);
        }
        Some((key.time, key.priority))
    }

    /// Smallest pending `(time, priority)` without popping — the lock-step
    /// window bound: the parallel engine's coordinator takes the minimum
    /// of this across all shard schedulers to pick the next global group.
    pub fn peek_key(&self) -> Option<(Time, Priority)> {
        let near = if self.near_pending > 0 {
            let mut page = self.cur_page;
            loop {
                let b = &self.buckets[(page % N_BUCKETS as u64) as usize];
                if !b.items.is_empty() {
                    // First non-empty bucket holds the earliest event; the
                    // bucket may be unsorted, so scan for the minimum key.
                    break b.items[b.head..].iter().map(|&(k, _)| (k.time, k.priority)).min();
                }
                page += 1;
            }
        } else {
            None
        };
        // Overflow events live ≥ N_BUCKETS pages past `cur_page`, so any
        // near event beats them; compare only when the near window is empty.
        near.or_else(|| self.overflow.peek().map(|&Reverse((k, _))| (k.time, k.priority)))
    }

    /// Drain this scheduler's slice of the global `(time, priority)` group
    /// into `out` (appended, **not** cleared) as `(seq, event)` pairs, and
    /// advance `now` to `time` even if nothing here matches — lock-stepping
    /// every shard's clock so later `schedule_at*` calls agree on "the
    /// past". The caller merges slices from all shards by seq.
    pub fn pop_group_seq(&mut self, time: Time, priority: Priority, out: &mut Vec<(u64, E)>) {
        self.now = self.now.max(time);
        match self.peek_key() {
            Some((t, p)) if t == time && p == priority => {}
            _ => return,
        }
        let (key, slot) = self.pop_key().expect("peeked a matching group");
        debug_assert!(key.time == time && key.priority == priority);
        self.processed += 1;
        let ev = self.take_payload(slot);
        out.push((key.seq, ev));
        // As in `pop_cycle`: the rest of the group is contiguous at the
        // head of the (sorted) current bucket.
        let idx = (self.cur_page % N_BUCKETS as u64) as usize;
        loop {
            let b = &mut self.buckets[idx];
            if b.items.is_empty() {
                break;
            }
            let (k, s) = b.items[b.head];
            if k.time != time || k.priority != priority {
                break;
            }
            b.head += 1;
            if b.head == b.items.len() {
                b.items.clear();
                b.head = 0;
            }
            self.near_pending -= 1;
            self.processed += 1;
            let ev = self.take_payload(s);
            out.push((k.seq, ev));
        }
    }

    /// Re-insert an event that was drained by [`pop_cycle`](Self::pop_cycle)
    /// but not handled (the model hit a stop/checkpoint boundary mid-batch),
    /// un-counting it from `processed`. Requeued events keep their relative
    /// order when requeued in batch order; they are appended after any event
    /// the already-handled part of the batch scheduled into the same group.
    pub fn requeue(&mut self, time: Time, priority: Priority, event: E) {
        self.schedule_at(time, priority, event);
        self.processed -= 1;
    }

    /// Snapshot every pending event as `(time, priority, payload)` in
    /// exact pop order (ascending `(time, priority, seq)`), without
    /// disturbing the queue. This is the checkpoint path for mid-flight
    /// state: re-scheduling the snapshot into a fresh scheduler in this
    /// order reproduces the pop order exactly, because newly assigned
    /// sequence numbers are monotone in insertion order.
    pub fn pending_snapshot(&self) -> Vec<(Time, Priority, E)>
    where
        E: Clone,
    {
        self.pending_snapshot_seq().into_iter().map(|(t, p, _, e)| (t, p, e)).collect()
    }

    /// [`pending_snapshot`](Self::pending_snapshot) with each event's
    /// sequence number exposed — the parallel engine's checkpoint path
    /// merges per-shard snapshots into one global pop order by seq.
    pub fn pending_snapshot_seq(&self) -> Vec<(Time, Priority, u64, E)>
    where
        E: Clone,
    {
        let mut keyed: Vec<(Key, usize)> = Vec::with_capacity(self.pending());
        for b in &self.buckets {
            keyed.extend_from_slice(&b.items[b.head..]);
        }
        keyed.extend(self.overflow.iter().map(|Reverse(e)| *e));
        // Keys are unique (seq), so an unstable sort is exact.
        keyed.sort_unstable_by_key(|&(k, _)| k);
        keyed
            .into_iter()
            .map(|(k, slot)| {
                let ev = self.payloads[slot].as_ref().expect("pending slot has payload");
                (k.time, k.priority, k.seq, ev.clone())
            })
            .collect()
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        if self.near_pending > 0 {
            let mut page = self.cur_page;
            loop {
                let b = &self.buckets[(page % N_BUCKETS as u64) as usize];
                if !b.items.is_empty() {
                    // The earliest event is in the first non-empty bucket;
                    // the bucket may be unsorted, so scan for its minimum.
                    return b.items[b.head..].iter().map(|&(k, _)| k.time).min();
                }
                page += 1;
            }
        }
        self.overflow.peek().map(|Reverse((k, _))| k.time)
    }

    /// Drop all pending events (used by the stop event and by phase
    /// sampling's time skips). Keeps `now`, `seq` and `processed`: the
    /// scheduler stays anchored at the current time and still refuses
    /// events in the past. For rewinding time (checkpoint restore into a
    /// fresh or reused scheduler), use [`reset`](Self::reset).
    pub fn clear(&mut self) {
        for b in &mut self.buckets {
            b.items.clear();
            b.head = 0;
            b.sorted = true;
        }
        self.cur_page = self.now >> BUCKET_SHIFT;
        self.near_pending = 0;
        self.overflow.clear();
        self.payloads.clear();
        self.free.clear();
    }

    /// Return to the pristine time-zero state: everything [`clear`]
    /// drops, plus `now`, `seq` and `processed`. This is the checkpoint-
    /// restore entry point — a restored simulation may resume at a time
    /// *earlier* than this scheduler has already reached, which `clear`
    /// (deliberately) still treats as "scheduling in the past".
    ///
    /// [`clear`]: Self::clear
    pub fn reset(&mut self) {
        self.clear();
        self.now = 0;
        self.seq = 0;
        self.processed = 0;
        self.cur_page = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(30, PRI_DEFAULT, "c");
        s.schedule_at(10, PRI_DEFAULT, "a");
        s.schedule_at(20, PRI_DEFAULT, "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(s.now(), 30);
        assert_eq!(s.processed(), 3);
    }

    #[test]
    fn same_time_ordered_by_priority_then_fifo() {
        let mut s = Scheduler::new();
        s.schedule_at(5, PRI_TRANSFER, "t1");
        s.schedule_at(5, PRI_NEGOTIATE, "n1");
        s.schedule_at(5, PRI_TRANSFER, "t2");
        s.schedule_at(5, PRI_NEGOTIATE, "n2");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["n1", "n2", "t1", "t2"]);
    }

    #[test]
    fn relative_scheduling_tracks_now() {
        let mut s = Scheduler::new();
        s.schedule_in(10, 1);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, 10);
        s.schedule_in(5, 2);
        assert_eq!(s.peek_time(), Some(15));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut s = Scheduler::new();
        s.schedule_at(10, PRI_DEFAULT, ());
        s.pop();
        s.schedule_at(5, PRI_DEFAULT, ());
    }

    #[test]
    fn slot_reuse_does_not_corrupt_payloads() {
        let mut s = Scheduler::new();
        for round in 0..100u32 {
            for k in 0..10u32 {
                s.schedule_in((k as u64) + 1, round * 100 + k);
            }
            for k in 0..10u32 {
                let (_, v) = s.pop().unwrap();
                assert_eq!(v, round * 100 + k);
            }
        }
        assert_eq!(s.pending(), 0);
    }

    #[test]
    fn far_future_events_cross_the_bucket_window() {
        let mut s = Scheduler::new();
        // Far beyond the near horizon, out of order, plus one near event.
        let far = N_BUCKETS as u64 * BUCKET_WIDTH_PS;
        s.schedule_at(7 * far + 3, PRI_DEFAULT, "far2");
        s.schedule_at(5, PRI_DEFAULT, "near");
        s.schedule_at(3 * far + 1, PRI_DEFAULT, "far1");
        s.schedule_at(u64::MAX, PRI_DEFAULT, "max");
        assert_eq!(s.pending(), 4);
        assert_eq!(s.peek_time(), Some(5));
        assert_eq!(s.pop(), Some((5, "near")));
        assert_eq!(s.peek_time(), Some(3 * far + 1));
        assert_eq!(s.pop(), Some((3 * far + 1, "far1")));
        // Scheduling relative to the new now still works across windows.
        s.schedule_in(2 * far, "mid");
        assert_eq!(s.pop(), Some((5 * far + 1, "mid")));
        assert_eq!(s.pop(), Some((7 * far + 3, "far2")));
        assert_eq!(s.pop(), Some((u64::MAX, "max")));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn pop_cycle_batches_one_group() {
        let mut s = Scheduler::new();
        s.schedule_at(5, PRI_TRANSFER, "t1");
        s.schedule_at(5, PRI_NEGOTIATE, "n1");
        s.schedule_at(5, PRI_NEGOTIATE, "n2");
        s.schedule_at(9, PRI_NEGOTIATE, "later");
        let mut out = Vec::new();
        assert_eq!(s.pop_cycle(&mut out), Some((5, PRI_NEGOTIATE)));
        assert_eq!(out, vec!["n1", "n2"]);
        assert_eq!(s.now(), 5);
        // An event scheduled into the drained group is picked up by the
        // next call, not lost.
        s.schedule_at(5, PRI_NEGOTIATE, "n3");
        assert_eq!(s.pop_cycle(&mut out), Some((5, PRI_NEGOTIATE)));
        assert_eq!(out, vec!["n3"]);
        assert_eq!(s.pop_cycle(&mut out), Some((5, PRI_TRANSFER)));
        assert_eq!(out, vec!["t1"]);
        assert_eq!(s.pop_cycle(&mut out), Some((9, PRI_NEGOTIATE)));
        assert_eq!(out, vec!["later"]);
        assert_eq!(s.pop_cycle(&mut out), None);
        assert!(out.is_empty());
        assert_eq!(s.processed(), 5);
    }

    #[test]
    fn requeue_restores_pending_and_uncounts() {
        let mut s = Scheduler::new();
        s.schedule_at(5, PRI_DEFAULT, "a");
        s.schedule_at(5, PRI_DEFAULT, "b");
        let mut out = Vec::new();
        s.pop_cycle(&mut out);
        assert_eq!(out, vec!["a", "b"]);
        // Handle "a", put "b" back.
        s.requeue(5, PRI_DEFAULT, "b");
        assert_eq!(s.processed(), 1);
        assert_eq!(s.pending(), 1);
        assert_eq!(s.pop(), Some((5, "b")));
    }

    #[test]
    fn clear_keeps_now_reset_rewinds() {
        let mut s = Scheduler::new();
        s.schedule_at(5000, PRI_DEFAULT, 1u32);
        s.pop();
        s.clear();
        assert_eq!(s.now(), 5000);
        assert_eq!(s.pending(), 0);
        // clear(): still anchored — the past stays rejected.
        let past = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut s2 = Scheduler::new();
            s2.schedule_at(5000, PRI_DEFAULT, 1u32);
            s2.pop();
            s2.clear();
            s2.schedule_at(100, PRI_DEFAULT, 2u32);
        }));
        assert!(past.is_err(), "clear() must keep rejecting events in the past");
        // reset(): full rewind — restoring an earlier checkpoint works.
        s.reset();
        assert_eq!(s.now(), 0);
        assert_eq!(s.processed(), 0);
        s.schedule_at(100, PRI_DEFAULT, 2u32);
        assert_eq!(s.pop(), Some((100, 2u32)));
    }

    #[test]
    fn pending_snapshot_matches_pop_order() {
        let mut s = Scheduler::new();
        let far = N_BUCKETS as u64 * BUCKET_WIDTH_PS;
        s.schedule_at(5, PRI_TRANSFER, "t");
        s.schedule_at(5, PRI_NEGOTIATE, "n1");
        s.schedule_at(3 * far, PRI_DEFAULT, "far");
        s.schedule_at(5, PRI_NEGOTIATE, "n2");
        s.schedule_at(9, PRI_SAMPLE, "s");
        let snap = s.pending_snapshot();
        let popped: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(t, e)| (t, e)).collect();
        assert_eq!(
            snap.iter().map(|&(t, _, e)| (t, e)).collect::<Vec<_>>(),
            popped,
            "snapshot order must equal pop order"
        );
        // Replaying the snapshot into a fresh scheduler reproduces it.
        let mut s2 = Scheduler::new();
        for &(t, p, e) in &snap {
            s2.schedule_at(t, p, e);
        }
        assert_eq!(s2.pending_snapshot(), snap);
    }

    #[test]
    fn peek_key_reports_the_next_group() {
        let mut s = Scheduler::new();
        assert_eq!(s.peek_key(), None);
        let far = N_BUCKETS as u64 * BUCKET_WIDTH_PS;
        s.schedule_at(3 * far, PRI_DEFAULT, "far");
        assert_eq!(s.peek_key(), Some((3 * far, PRI_DEFAULT)));
        s.schedule_at(9, PRI_SAMPLE, "s");
        s.schedule_at(9, PRI_NEGOTIATE, "n");
        assert_eq!(s.peek_key(), Some((9, PRI_NEGOTIATE)));
        s.pop();
        assert_eq!(s.peek_key(), Some((9, PRI_SAMPLE)));
    }

    /// Two shard schedulers fed from one global seq counter must merge
    /// back into exactly the order a single scheduler produces.
    #[test]
    fn sharded_pop_group_seq_merge_equals_single_queue() {
        let mut single = Scheduler::new();
        let mut a = Scheduler::new();
        let mut b = Scheduler::new();
        let mut seq = 0u64;
        // Interleave inserts across shards, including group collisions.
        let plan: &[(Time, Priority, &str, bool)] = &[
            (5, PRI_DEFAULT, "a1", false),
            (5, PRI_DEFAULT, "b1", true),
            (5, PRI_DEFAULT, "a2", false),
            (5, PRI_NEGOTIATE, "b2", true),
            (7, PRI_DEFAULT, "b3", true),
            (5, PRI_DEFAULT, "b4", true),
            (7, PRI_DEFAULT, "a3", false),
        ];
        for &(t, p, ev, to_b) in plan {
            single.schedule_at(t, p, ev);
            let shard = if to_b { &mut b } else { &mut a };
            shard.schedule_at_seq(t, p, seq, ev);
            seq += 1;
        }
        let mut merged_events = Vec::new();
        loop {
            let key = match (a.peek_key(), b.peek_key()) {
                (None, None) => break,
                (Some(x), None) => x,
                (None, Some(y)) => y,
                (Some(x), Some(y)) => x.min(y),
            };
            let mut merged: Vec<(u64, &str)> = Vec::new();
            a.pop_group_seq(key.0, key.1, &mut merged);
            b.pop_group_seq(key.0, key.1, &mut merged);
            merged.sort_unstable_by_key(|&(q, _)| q);
            // Both shards' clocks advanced in lock-step.
            assert_eq!(a.now(), key.0);
            assert_eq!(b.now(), key.0);
            merged_events.extend(merged.into_iter().map(|(_, e)| e));
        }
        let mut want = Vec::new();
        let mut batch = Vec::new();
        while single.pop_cycle(&mut batch).is_some() {
            want.extend(batch.iter().copied());
        }
        assert_eq!(merged_events, want);
        assert_eq!(a.processed() + b.processed(), single.processed());
    }

    #[test]
    fn pending_snapshot_seq_merges_across_schedulers() {
        let mut a = Scheduler::new();
        let mut b = Scheduler::new();
        a.schedule_at_seq(5, PRI_DEFAULT, 0, "e0");
        b.schedule_at_seq(5, PRI_DEFAULT, 1, "e1");
        a.schedule_at_seq(5, PRI_DEFAULT, 2, "e2");
        b.schedule_at_seq(3, PRI_DEFAULT, 3, "e3");
        let mut all = a.pending_snapshot_seq();
        all.extend(b.pending_snapshot_seq());
        all.sort_unstable_by_key(|&(t, p, q, _)| (t, p, q));
        let order: Vec<_> = all.iter().map(|&(_, _, _, e)| e).collect();
        assert_eq!(order, vec!["e3", "e0", "e1", "e2"]);
    }

    #[test]
    fn interleaved_same_bucket_inserts_stay_ordered() {
        // Insert into the bucket currently being drained, with an earlier
        // priority than events still in it: the binary-insert path must
        // keep the order exact.
        let mut s = Scheduler::new();
        s.schedule_at(10, PRI_SAMPLE, "s1");
        s.schedule_at(10, PRI_TRANSFER, "t1");
        assert_eq!(s.pop(), Some((10, "t1")));
        // Same time, earlier priority than the pending "s1".
        s.schedule_at(10, PRI_TRANSFER, "t2");
        s.schedule_at(12, PRI_NEGOTIATE, "n1");
        assert_eq!(s.pop(), Some((10, "t2")));
        assert_eq!(s.pop(), Some((10, "s1")));
        assert_eq!(s.pop(), Some((12, "n1")));
    }
}
