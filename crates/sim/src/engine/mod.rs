//! The discrete-event simulation engine (paper §III-C).
//!
//! XMTSim is a *discrete-event* (DE) simulator, not a discrete-time one:
//! the main loop pops the next event from a time-ordered event list and
//! notifies the actor that scheduled it, so simulated time advances in
//! irregular jumps instead of polling every component every cycle
//! (paper Fig. 5b vs Fig. 5a).
//!
//! Two entry points are provided:
//!
//! * [`Scheduler`] — the bare event list used by the production
//!   cycle-accurate model. Events carry an arbitrary payload type; the
//!   simulation loop lives with the model, which plays the role of one
//!   large *macro-actor* (see below) for each component class.
//! * [`actor`] — a faithful port of the paper's actor framework
//!   (`Actor::notify` callbacks, macro-actors that iterate many components
//!   per notification). It exists both as a teaching artifact and to
//!   reproduce the paper's macro-actor threshold experiment (§III-D:
//!   grouping components into a macro-actor wins once the event rate
//!   passes a threshold — ~800 events/cycle in the paper's measurement).

pub mod actor;

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time, in picoseconds.
///
/// Clock domains convert their cycle counts to picoseconds through their
/// current period, which lets the activity-plug-in API retune domain
/// frequencies mid-run (paper §III-B) without rescaling history.
pub type Time = u64;

/// Scheduling priority for events that share a timestamp. Lower runs
/// first. This implements the paper's two-phase clock-cycle mechanism:
/// components first *negotiate* transfers, then *transfer* packages, and
/// the priority scheme keeps the phase order consistent in every cycle.
pub type Priority = u8;

/// Priority of the negotiate phase (runs first within a timestamp).
pub const PRI_NEGOTIATE: Priority = 0;
/// Priority of the transfer phase.
pub const PRI_TRANSFER: Priority = 1;
/// Default priority for ordinary events.
pub const PRI_DEFAULT: Priority = 2;
/// Priority of sampling/observation events (run after state settles).
pub const PRI_SAMPLE: Priority = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    time: Time,
    priority: Priority,
    seq: u64,
}

/// A time/priority-ordered event list with deterministic FIFO tie-breaking.
///
/// Determinism matters: checkpointing (paper §III-E) and the verification
/// of the cycle-accurate model against the functional model both rely on
/// identical runs producing identical event orders.
#[derive(Debug)]
pub struct Scheduler<E> {
    heap: BinaryHeap<Reverse<(Key, usize)>>,
    payloads: Vec<Option<E>>,
    free: Vec<usize>,
    now: Time,
    seq: u64,
    processed: u64,
}

impl<E> Default for Scheduler<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Scheduler<E> {
    /// An empty scheduler at time zero.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            payloads: Vec::new(),
            free: Vec::new(),
            now: 0,
            seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time (the timestamp of the last popped event).
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of events processed so far.
    #[inline]
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Schedule `event` at absolute time `time` with `priority`.
    ///
    /// Scheduling in the past panics: actors may only schedule at or after
    /// the current time, exactly like the paper's DE scheduler.
    pub fn schedule_at(&mut self, time: Time, priority: Priority, event: E) {
        assert!(time >= self.now, "event scheduled in the past: {time} < {}", self.now);
        let slot = match self.free.pop() {
            Some(s) => {
                self.payloads[s] = Some(event);
                s
            }
            None => {
                self.payloads.push(Some(event));
                self.payloads.len() - 1
            }
        };
        let key = Key { time, priority, seq: self.seq };
        self.seq += 1;
        self.heap.push(Reverse((key, slot)));
    }

    /// Schedule `event` `delay` picoseconds from now with default priority.
    pub fn schedule_in(&mut self, delay: Time, event: E) {
        self.schedule_at(self.now + delay, PRI_DEFAULT, event);
    }

    /// Pop the next event, advancing simulated time.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        let Reverse((key, slot)) = self.heap.pop()?;
        self.now = key.time;
        self.processed += 1;
        let ev = self.payloads[slot].take().expect("event slot already taken");
        self.free.push(slot);
        Some((key.time, ev))
    }

    /// Time of the next pending event without popping it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse((k, _))| k.time)
    }

    /// Drop all pending events (used by the stop event and checkpoints).
    pub fn clear(&mut self) {
        self.heap.clear();
        self.payloads.clear();
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule_at(30, PRI_DEFAULT, "c");
        s.schedule_at(10, PRI_DEFAULT, "a");
        s.schedule_at(20, PRI_DEFAULT, "b");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).collect();
        assert_eq!(order, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(s.now(), 30);
        assert_eq!(s.processed(), 3);
    }

    #[test]
    fn same_time_ordered_by_priority_then_fifo() {
        let mut s = Scheduler::new();
        s.schedule_at(5, PRI_TRANSFER, "t1");
        s.schedule_at(5, PRI_NEGOTIATE, "n1");
        s.schedule_at(5, PRI_TRANSFER, "t2");
        s.schedule_at(5, PRI_NEGOTIATE, "n2");
        let order: Vec<_> = std::iter::from_fn(|| s.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["n1", "n2", "t1", "t2"]);
    }

    #[test]
    fn relative_scheduling_tracks_now() {
        let mut s = Scheduler::new();
        s.schedule_in(10, 1);
        let (t, _) = s.pop().unwrap();
        assert_eq!(t, 10);
        s.schedule_in(5, 2);
        assert_eq!(s.peek_time(), Some(15));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn rejects_past_events() {
        let mut s = Scheduler::new();
        s.schedule_at(10, PRI_DEFAULT, ());
        s.pop();
        s.schedule_at(5, PRI_DEFAULT, ());
    }

    #[test]
    fn slot_reuse_does_not_corrupt_payloads() {
        let mut s = Scheduler::new();
        for round in 0..100u32 {
            for k in 0..10u32 {
                s.schedule_in((k as u64) + 1, round * 100 + k);
            }
            for k in 0..10u32 {
                let (_, v) = s.pop().unwrap();
                assert_eq!(v, round * 100 + k);
            }
        }
        assert_eq!(s.pending(), 0);
    }
}
