//! The paper's actor framework (§III-C, Fig. 4).
//!
//! *Actors* are objects that can schedule events; the DE scheduler notifies
//! an actor through a callback when the time of an event it previously
//! scheduled arrives. A cycle-accurate component may be a single actor, or
//! many components may be grouped into one **macro-actor** that iterates
//! through them on each notification — the paper's remedy for the
//! scheduling overhead of DE simulation when many actions fall on the same
//! simulated instant (§III-D: with no action code, grouping pays off past
//! roughly 800 events per cycle on the paper's host).
//!
//! The production cycle-accurate model in [`crate::cycle`] uses the bare
//! [`Scheduler`] with typed events — operationally a set
//! of macro-actors, one per component class. This module keeps the
//! object-oriented formulation available: it is used by the engine tests,
//! by `xmt-bench`'s reproduction of the macro-actor threshold experiment,
//! and as a starting point for users extending the simulator with new
//! component types, which is how the Java original was meant to be
//! extended.

use super::{Priority, Scheduler, Time, PRI_DEFAULT};

/// Identifies an actor registered with an [`ActorSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActorId(pub usize);

/// Context handed to an actor during notification: scheduling capability
/// plus mutable access to the shared world state `W`.
pub struct ActorCtx<'a, W> {
    id: ActorId,
    sched: &'a mut Scheduler<ActorId>,
    /// Shared simulation state visible to all actors.
    pub world: &'a mut W,
    stop: &'a mut bool,
}

impl<'a, W> ActorCtx<'a, W> {
    /// The id of the actor being notified.
    pub fn id(&self) -> ActorId {
        self.id
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Schedule a future notification for this actor.
    pub fn schedule(&mut self, delay: Time) {
        let id = self.id;
        self.schedule_for(id, delay, PRI_DEFAULT);
    }

    /// Schedule a notification for an arbitrary actor.
    pub fn schedule_for(&mut self, target: ActorId, delay: Time, priority: Priority) {
        self.sched.schedule_at(self.sched.now() + delay, priority, target);
    }

    /// Request termination of the simulation (the paper's *stop event*).
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

/// An object that can schedule events and is notified when they fire.
pub trait Actor<W> {
    /// Called by the DE scheduler when an event this actor scheduled (or
    /// that another actor scheduled for it) comes due.
    fn notify(&mut self, ctx: &mut ActorCtx<'_, W>);
}

impl<W, F: FnMut(&mut ActorCtx<'_, W>)> Actor<W> for F {
    fn notify(&mut self, ctx: &mut ActorCtx<'_, W>) {
        self(ctx)
    }
}

/// A registry of actors plus the DE scheduler driving them.
pub struct ActorSystem<W> {
    actors: Vec<Option<Box<dyn Actor<W>>>>,
    sched: Scheduler<ActorId>,
    /// Shared world state passed to every notification.
    pub world: W,
    stop: bool,
}

impl<W> ActorSystem<W> {
    /// Create a system around shared state `world`.
    pub fn new(world: W) -> Self {
        ActorSystem { actors: Vec::new(), sched: Scheduler::new(), world, stop: false }
    }

    /// Register an actor; returns its id.
    pub fn add(&mut self, actor: impl Actor<W> + 'static) -> ActorId {
        self.actors.push(Some(Box::new(actor)));
        ActorId(self.actors.len() - 1)
    }

    /// Schedule the first notification for `actor`.
    pub fn schedule(&mut self, actor: ActorId, time: Time, priority: Priority) {
        self.sched.schedule_at(time, priority, actor);
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.sched.now()
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.sched.processed()
    }

    /// Run until the event list drains, an actor calls
    /// [`ActorCtx::stop`], or `max_events` notifications have been
    /// delivered. Returns the number of notifications delivered.
    ///
    /// This is the main loop of paper Fig. 5b.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut delivered = 0;
        while delivered < max_events && !self.stop {
            let Some((_, id)) = self.sched.pop() else { break };
            // Temporarily detach the actor so it can borrow the rest of
            // the system mutably (the Rust equivalent of the Java
            // callback into a live object graph).
            let mut actor = self.actors[id.0].take().expect("actor notified re-entrantly");
            let mut ctx = ActorCtx {
                id,
                sched: &mut self.sched,
                world: &mut self.world,
                stop: &mut self.stop,
            };
            actor.notify(&mut ctx);
            self.actors[id.0] = Some(actor);
            delivered += 1;
        }
        delivered
    }
}

/// A *port*: the points of transfer for packages between cycle-accurate
/// components (paper Fig. 4). Communication is split into the two phases
/// of the paper's clock-cycle protocol:
///
/// 1. **negotiate** — a sender [`offer`](Port::offer)s a package during
///    the [`PRI_NEGOTIATE`](super::PRI_NEGOTIATE) phase; the port accepts
///    it only if it has capacity (backpressure);
/// 2. **transfer** — the receiver [`take`](Port::take)s accepted packages
///    during the [`PRI_TRANSFER`](super::PRI_TRANSFER) phase.
///
/// The event-priority scheme keeps the phase order consistent within
/// every cycle, which is exactly how the paper serializes negotiation
/// and transfer without a global clock walk.
#[derive(Debug)]
pub struct Port<P> {
    queue: std::collections::VecDeque<P>,
    capacity: usize,
    /// Offers rejected for lack of capacity (backpressure indicator).
    pub rejected: u64,
}

impl<P> Port<P> {
    /// A port accepting up to `capacity` in-flight packages.
    pub fn new(capacity: usize) -> Self {
        Port { queue: std::collections::VecDeque::new(), capacity, rejected: 0 }
    }

    /// Negotiate phase: offer a package. Returns it back on refusal.
    pub fn offer(&mut self, package: P) -> Result<(), P> {
        if self.queue.len() < self.capacity {
            self.queue.push_back(package);
            Ok(())
        } else {
            self.rejected += 1;
            Err(package)
        }
    }

    /// Transfer phase: take the oldest accepted package, if any.
    pub fn take(&mut self) -> Option<P> {
        self.queue.pop_front()
    }

    /// Packages currently held.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the port holds no packages.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }
}

/// A macro-actor: one actor that owns many simple components and iterates
/// them per notification, trading event-list traffic for an inner loop
/// whose body resembles discrete-time simulation (paper Fig. 4/5).
pub struct MacroActor<W, C> {
    /// The grouped components.
    pub components: Vec<C>,
    step: fn(&mut C, Time, &mut W),
    period: Time,
}

impl<W, C> MacroActor<W, C> {
    /// Group `components`, stepping each with `step` every `period`
    /// picoseconds.
    pub fn new(components: Vec<C>, period: Time, step: fn(&mut C, Time, &mut W)) -> Self {
        MacroActor { components, step, period }
    }
}

impl<W, C> Actor<W> for MacroActor<W, C> {
    fn notify(&mut self, ctx: &mut ActorCtx<'_, W>) {
        let now = ctx.now();
        for c in &mut self.components {
            (self.step)(c, now, ctx.world);
        }
        let period = self.period;
        ctx.schedule(period);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_actor_self_schedules() {
        // An actor that counts down and stops the simulation at zero.
        struct Countdown(u32);
        impl Actor<u64> for Countdown {
            fn notify(&mut self, ctx: &mut ActorCtx<'_, u64>) {
                *ctx.world += 1;
                if self.0 == 0 {
                    ctx.stop();
                } else {
                    self.0 -= 1;
                    ctx.schedule(100);
                }
            }
        }
        let mut sys = ActorSystem::new(0u64);
        let id = sys.add(Countdown(4));
        sys.schedule(id, 0, PRI_DEFAULT);
        sys.run(u64::MAX);
        assert_eq!(sys.world, 5);
        assert_eq!(sys.now(), 400);
    }

    #[test]
    fn actors_can_notify_each_other() {
        // Ping-pong: each actor schedules the other.
        struct Ping(ActorId);
        impl Actor<Vec<&'static str>> for Ping {
            fn notify(&mut self, ctx: &mut ActorCtx<'_, Vec<&'static str>>) {
                ctx.world.push("ping");
                if ctx.world.len() < 6 {
                    ctx.schedule_for(self.0, 10, PRI_DEFAULT);
                }
            }
        }
        struct Pong(ActorId);
        impl Actor<Vec<&'static str>> for Pong {
            fn notify(&mut self, ctx: &mut ActorCtx<'_, Vec<&'static str>>) {
                ctx.world.push("pong");
                if ctx.world.len() < 6 {
                    ctx.schedule_for(self.0, 10, PRI_DEFAULT);
                }
            }
        }
        let mut sys = ActorSystem::new(Vec::new());
        let ping = sys.add(Ping(ActorId(1)));
        let pong = sys.add(Pong(ping));
        let _ = pong;
        sys.schedule(ping, 0, PRI_DEFAULT);
        sys.run(u64::MAX);
        assert_eq!(sys.world, vec!["ping", "pong", "ping", "pong", "ping", "pong"]);
        assert_eq!(sys.now(), 50);
    }

    #[test]
    fn ports_implement_two_phase_backpressure() {
        use super::super::{PRI_NEGOTIATE, PRI_TRANSFER};

        // Producer offers one package per cycle in the negotiate phase;
        // consumer drains one every *two* cycles in the transfer phase.
        // The port capacity of 2 forces backpressure on the producer.
        struct World {
            port: Port<u32>,
            produced: u32,
            consumed: Vec<u32>,
            retries: u32,
        }
        struct Producer {
            next: u32,
            remaining: u32,
        }
        impl Actor<World> for Producer {
            fn notify(&mut self, ctx: &mut ActorCtx<'_, World>) {
                if self.remaining == 0 {
                    return;
                }
                match ctx.world.port.offer(self.next) {
                    Ok(()) => {
                        ctx.world.produced += 1;
                        self.next += 1;
                        self.remaining -= 1;
                    }
                    Err(_) => ctx.world.retries += 1, // try again next cycle
                }
                let id = ctx.id();
                ctx.schedule_for(id, 1000, PRI_NEGOTIATE);
            }
        }
        struct Consumer;
        impl Actor<World> for Consumer {
            fn notify(&mut self, ctx: &mut ActorCtx<'_, World>) {
                if let Some(p) = ctx.world.port.take() {
                    ctx.world.consumed.push(p);
                }
                if ctx.world.consumed.len() < 6 {
                    let id = ctx.id();
                    ctx.schedule_for(id, 2000, PRI_TRANSFER);
                }
            }
        }
        let mut sys = ActorSystem::new(World {
            port: Port::new(2),
            produced: 0,
            consumed: Vec::new(),
            retries: 0,
        });
        let prod = sys.add(Producer { next: 100, remaining: 6 });
        let cons = sys.add(Consumer);
        sys.schedule(prod, 0, PRI_NEGOTIATE);
        sys.schedule(cons, 0, PRI_TRANSFER);
        sys.run(10_000);
        // All packages arrive, in order, despite backpressure.
        assert_eq!(sys.world.consumed, vec![100, 101, 102, 103, 104, 105]);
        assert!(sys.world.retries > 0, "the slow consumer caused backpressure");
        assert!(sys.world.port.rejected > 0);
    }

    #[test]
    fn macro_actor_equivalent_to_individual_actors() {
        // N counters stepped each cycle: grouped vs individual must agree.
        const N: usize = 32;
        const CYCLES: u64 = 50;

        // Individual: one actor per counter.
        struct Counter;
        impl Actor<Vec<u64>> for Counter {
            fn notify(&mut self, ctx: &mut ActorCtx<'_, Vec<u64>>) {
                let idx = ctx.id().0;
                ctx.world[idx] += 1;
                if ctx.world[idx] < CYCLES {
                    ctx.schedule(1000);
                }
            }
        }
        let mut individual = ActorSystem::new(vec![0u64; N]);
        for _ in 0..N {
            let id = individual.add(Counter);
            individual.schedule(id, 0, PRI_DEFAULT);
        }
        individual.run(u64::MAX);

        // Grouped: one macro-actor stepping all counters.
        struct Cell(usize);
        let cells: Vec<Cell> = (0..N).map(Cell).collect();
        let mut grouped = ActorSystem::new((vec![0u64; N], false));
        let ma = MacroActor::new(cells, 1000, |c: &mut Cell, _t, w: &mut (Vec<u64>, bool)| {
            if w.0[c.0] < CYCLES {
                w.0[c.0] += 1;
            } else {
                w.1 = true;
            }
        });
        let id = grouped.add(ma);
        grouped.schedule(id, 0, PRI_DEFAULT);
        while !grouped.world.1 {
            grouped.run(1);
        }
        assert_eq!(individual.world, grouped.world.0);
        // The macro-actor used far fewer events.
        assert!(grouped.events_processed() < individual.events_processed() / 4);
    }
}
