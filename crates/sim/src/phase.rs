//! Phase sampling (paper §III-F, "features under development").
//!
//! Programs with long execution times consist of phases of similar
//! behaviour; an extension can be evaluated by running the cycle-accurate
//! simulation for a few intervals of each phase and *fast-forwarding*
//! in between. This module implements that roadmap feature: the
//! simulation alternates between
//!
//! * **detail intervals** — ordinary cycle-accurate simulation, which
//!   also measure the current cycles-per-instruction (CPI), and
//! * **fast-forward intervals** — functional execution (exact
//!   architectural state, spawns serialized) that charges simulated time
//!   at the measured CPI instead of modeling every package.
//!
//! Functional correctness is preserved exactly — only the *timing* of the
//! fast-forwarded stretch is extrapolated. Interval boundaries snap to
//! quiescent points (master between instructions, no parallel section, no
//! packages in flight), the same boundaries checkpoints use.

use crate::config::ClockDomain;
use crate::cycle::{CycleSim, Outcome, RunSummary, SimError};
use crate::exec::{self, Issued, Mode};
use crate::machine::Trap;

/// Phase-sampling schedule.
#[derive(Debug, Clone, Copy)]
pub struct PhaseSampling {
    /// Cluster cycles of cycle-accurate detail per interval.
    pub detail_cycles: u64,
    /// Instructions to fast-forward between detail intervals.
    pub ff_instructions: u64,
}

impl Default for PhaseSampling {
    fn default() -> Self {
        PhaseSampling { detail_cycles: 20_000, ff_instructions: 200_000 }
    }
}

/// Outcome of a phased run.
#[derive(Debug, Clone, PartialEq)]
pub struct PhasedSummary {
    /// Final summary (cycles include the extrapolated stretches).
    pub summary: RunSummary,
    /// Instructions executed under the cycle-accurate model.
    pub detailed_instructions: u64,
    /// Instructions executed in fast-forward.
    pub fast_forwarded_instructions: u64,
    /// Number of detail intervals run.
    pub intervals: u32,
}

impl PhasedSummary {
    /// Fraction of instructions that were fast-forwarded.
    pub fn ff_fraction(&self) -> f64 {
        let total = self.detailed_instructions + self.fast_forwarded_instructions;
        if total == 0 {
            0.0
        } else {
            self.fast_forwarded_instructions as f64 / total as f64
        }
    }
}

impl CycleSim {
    /// Run with phase sampling: alternate cycle-accurate detail intervals
    /// with CPI-extrapolated functional fast-forwarding.
    pub fn run_phased(&mut self, schedule: PhaseSampling) -> Result<PhasedSummary, SimError> {
        assert!(schedule.detail_cycles > 0 && schedule.ff_instructions > 0);
        let mut detailed_instructions = 0u64;
        let mut fast_forwarded = 0u64;
        let mut intervals = 0u32;
        // Seed CPI until the first interval completes (serial-ish guess).
        let mut cpi = 2.0f64;
        loop {
            let c0 = self.cycles();
            let i0 = self.stats.instructions;
            self.set_checkpoint_cycle(c0 + schedule.detail_cycles);
            match self.run_inner()? {
                Outcome::Done(mut s) => {
                    detailed_instructions += self.stats.instructions - i0;
                    s.instructions += fast_forwarded;
                    return Ok(PhasedSummary {
                        summary: s,
                        detailed_instructions,
                        fast_forwarded_instructions: fast_forwarded,
                        intervals: intervals + 1,
                    });
                }
                Outcome::Checkpoint(_) => {
                    intervals += 1;
                    let dc = self.cycles() - c0;
                    let di = self.stats.instructions - i0;
                    detailed_instructions += di;
                    if di > 0 {
                        cpi = dc as f64 / di as f64;
                    }
                }
            }
            let ffed = self.fast_forward(schedule.ff_instructions, cpi)?;
            fast_forwarded += ffed;
            if self.machine.halted {
                let mut s = self.summary();
                s.instructions += fast_forwarded;
                return Ok(PhasedSummary {
                    summary: s,
                    detailed_instructions,
                    fast_forwarded_instructions: fast_forwarded,
                    intervals,
                });
            }
        }
    }

    /// Execute up to `max_instrs` instructions *functionally* from the
    /// current quiescent point, charging `cpi` cluster cycles per
    /// instruction of simulated time. Parallel sections are serialized
    /// (and always executed to completion, so the machine stays
    /// architecturally exact). Returns the number of instructions
    /// executed.
    pub(crate) fn fast_forward(&mut self, max_instrs: u64, cpi: f64) -> Result<u64, SimError> {
        let exe = self.executable().clone();
        let mut executed = 0u64;
        while executed < max_instrs && !self.machine.halted {
            let issued = exec::issue(&exe, &mut self.master, &mut self.machine, Mode::Master)?;
            executed += 1;
            match issued {
                Issued::Done(_) | Issued::Fence => {}
                Issued::Mem(req) => {
                    let v = exec::perform(&mut self.machine, &req);
                    exec::complete(&mut self.master, &req, v);
                }
                Issued::Spawn { lo, hi, spawn_idx } => {
                    executed += self.ff_spawn(&exe, lo, hi, spawn_idx)?;
                }
                Issued::Halt => break,
                Issued::ChkidBlocked => unreachable!("chkid traps in master mode"),
            }
        }
        // Charge the extrapolated time and restart the event loop there.
        let dt = (executed as f64 * cpi).round() as u64
            * self.periods()[ClockDomain::Cluster as usize];
        self.skip_time(dt);
        Ok(executed)
    }

    /// Serialize one spawn during fast-forward (the §III-A functional
    /// mechanism). Returns instructions executed inside the section.
    fn ff_spawn(
        &mut self,
        exe: &xmt_isa::Executable,
        lo: i32,
        hi: i32,
        spawn_idx: u32,
    ) -> Result<u64, SimError> {
        let join_idx = exe.join_of(spawn_idx).expect("linked spawn");
        self.master.pc = join_idx + 1;
        if lo > hi {
            return Ok(0);
        }
        self.machine.gregs[0] = lo as u32;
        let mut ctx =
            crate::machine::ThreadCtx { regs: self.master.regs.clone(), pc: spawn_idx + 1 };
        let mut executed = 0u64;
        loop {
            let issued = exec::issue(exe, &mut ctx, &mut self.machine, Mode::Parallel { hi })?;
            executed += 1;
            match issued {
                Issued::Done(_) | Issued::Fence => {}
                Issued::Mem(req) => {
                    let v = exec::perform(&mut self.machine, &req);
                    exec::complete(&mut ctx, &req, v);
                }
                Issued::ChkidBlocked => return Ok(executed),
                Issued::Halt | Issued::Spawn { .. } => {
                    return Err(SimError::Trap(Trap::SpawnInParallel { pc: ctx.pc }))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XmtConfig;
    use xmt_isa::{AsmProgram, GlobalReg, Instr, MemoryMap, Reg, Target};

    /// A program with many homogeneous phases: R rounds of (parallel
    /// increment over A + serial polling loop).
    fn phased_program(n: i32, rounds: i32) -> (AsmProgram, MemoryMap) {
        let mut mm = MemoryMap::new();
        let a = mm.push("A", vec![0; n as usize]);
        let mut p = AsmProgram::new();
        p.label("main");
        p.push(Instr::Li { rt: Reg::S3, imm: rounds });
        p.label("round");
        p.push(Instr::Li { rt: Reg::A0, imm: 0 });
        p.push(Instr::Li { rt: Reg::A1, imm: n - 1 });
        p.push(Instr::Li { rt: Reg::S0, imm: a as i32 });
        p.push(Instr::Spawn { lo: Reg::A0, hi: Reg::A1 });
        p.label("vt");
        p.push(Instr::Li { rt: Reg::T0, imm: 1 });
        p.push(Instr::Ps { rt: Reg::T0, gr: GlobalReg::THREAD_ALLOC });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Sll { rd: Reg::T1, rt: Reg::T0, sh: 2 });
        p.push(Instr::Add { rd: Reg::T1, rs: Reg::T1, rt: Reg::S0 });
        p.push(Instr::Lw { rt: Reg::T2, base: Reg::T1, off: 0 });
        p.push(Instr::Addi { rt: Reg::T2, rs: Reg::T2, imm: 1 });
        p.push(Instr::Swnb { rt: Reg::T2, base: Reg::T1, off: 0 });
        p.push(Instr::J { target: Target::label("vt") });
        p.push(Instr::Join);
        // Serial filler between parallel phases.
        p.push(Instr::Li { rt: Reg::T3, imm: 50 });
        p.label("fill");
        p.push(Instr::Addi { rt: Reg::T3, rs: Reg::T3, imm: -1 });
        p.push(Instr::Bgtz { rs: Reg::T3, target: Target::label("fill") });
        p.push(Instr::Addi { rt: Reg::S3, rs: Reg::S3, imm: -1 });
        p.push(Instr::Bgtz { rs: Reg::S3, target: Target::label("round") });
        p.push(Instr::Halt);
        (p, mm)
    }

    #[test]
    fn phased_results_exact_and_timing_close() {
        let (p, mm) = phased_program(64, 40);
        let exe = p.link(mm).unwrap();

        let mut full = CycleSim::new(exe.clone(), XmtConfig::tiny());
        let fs = full.run().unwrap();
        let full_mem = full.machine.read_symbol(full.executable(), "A", 64).unwrap();

        let mut phased = CycleSim::new(exe, XmtConfig::tiny());
        let ps = phased
            .run_phased(PhaseSampling { detail_cycles: 3_000, ff_instructions: 8_000 })
            .unwrap();
        let phased_mem = phased.machine.read_symbol(phased.executable(), "A", 64).unwrap();

        // Architectural state is exact.
        assert_eq!(phased_mem, full_mem);
        assert_eq!(phased_mem, vec![40u32; 64]);
        // A real share of the work was fast-forwarded.
        assert!(ps.ff_fraction() > 0.2, "ff fraction {:.2}", ps.ff_fraction());
        assert!(ps.intervals >= 2);
        // Extrapolated cycle count lands near the true one (homogeneous
        // phases → CPI transfers well).
        let ratio = ps.summary.cycles as f64 / fs.cycles as f64;
        assert!(
            (0.6..1.4).contains(&ratio),
            "phased {} vs full {} (ratio {ratio:.2})",
            ps.summary.cycles,
            fs.cycles
        );
        // And it processed far fewer discrete events.
        assert!(
            ps.summary.events * 2 < fs.events,
            "phased events {} vs full {}",
            ps.summary.events,
            fs.events
        );
        // Instruction totals agree to within the scheduling-protocol
        // slack: in cycle-accurate mode every TCU runs its own
        // li/ps/chkid attempts, while serialized fast-forward uses one
        // context.
        let islack = ps.summary.instructions.abs_diff(fs.instructions);
        assert!(
            islack * 20 < fs.instructions,
            "instruction totals far apart: {} vs {}",
            ps.summary.instructions,
            fs.instructions
        );
    }

    #[test]
    fn phased_on_short_program_degenerates_gracefully() {
        // Program shorter than one detail interval: no fast-forwarding.
        let mut p = AsmProgram::new();
        p.push(Instr::Li { rt: Reg::T0, imm: 5 });
        p.push(Instr::Print { rs: Reg::T0 });
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::new()).unwrap();
        let mut sim = CycleSim::new(exe, XmtConfig::tiny());
        let ps = sim.run_phased(PhaseSampling::default()).unwrap();
        assert_eq!(ps.fast_forwarded_instructions, 0);
        assert_eq!(sim.machine.output.ints(), vec![5]);
    }
}
