//! Execution traces (paper §III-E).
//!
//! XMTSim generates traces at two detail levels: the *functional* level
//! shows the instructions as they execute; the *cycle-accurate* level
//! additionally reports the components that instruction and data packages
//! travel through (here: the service at the cache module and the response
//! completion). Traces can be limited to specific instructions of the
//! assembly input and/or specific TCUs.

use crate::engine::Time;
use std::collections::BTreeSet;
use xmt_harness::{json_enum, json_struct};
use std::fmt;

/// Trace detail level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceLevel {
    /// Only instruction issues/executions.
    Functional,
    /// Issues plus memory-package service and completion.
    CycleAccurate,
}

json_enum!(TraceLevel { Functional, CycleAccurate });

/// One trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// An instruction issued (`tcu == None` means the Master TCU).
    Issue { time: Time, tcu: Option<u32>, pc: u32 },
    /// A memory package serviced at its cache module.
    Service { time: Time, tcu: u32, addr: u32, pc: u32 },
    /// A memory response arrived back at the TCU.
    Complete { time: Time, tcu: u32, addr: u32, pc: u32 },
}

json_enum!(TraceEvent {
    Issue { time, tcu, pc },
    Service { time, tcu, addr, pc },
    Complete { time, tcu, addr, pc },
});

impl TraceEvent {
    fn time(&self) -> Time {
        match self {
            TraceEvent::Issue { time, .. }
            | TraceEvent::Service { time, .. }
            | TraceEvent::Complete { time, .. } => *time,
        }
    }

    fn pc(&self) -> u32 {
        match self {
            TraceEvent::Issue { pc, .. }
            | TraceEvent::Service { pc, .. }
            | TraceEvent::Complete { pc, .. } => *pc,
        }
    }

    fn tcu(&self) -> Option<u32> {
        match self {
            TraceEvent::Issue { tcu, .. } => *tcu,
            TraceEvent::Service { tcu, .. } | TraceEvent::Complete { tcu, .. } => Some(*tcu),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let who = match self.tcu() {
            Some(t) => format!("tcu{t:04}"),
            None => "master ".to_string(),
        };
        match self {
            TraceEvent::Issue { time, pc, .. } => {
                write!(f, "{time:>12} {who} issue    @{pc}")
            }
            TraceEvent::Service { time, addr, pc, .. } => {
                write!(f, "{time:>12} {who} service  @{pc} [0x{addr:08x}]")
            }
            TraceEvent::Complete { time, addr, pc, .. } => {
                write!(f, "{time:>12} {who} complete @{pc} [0x{addr:08x}]")
            }
        }
    }
}

/// A trace collector with the paper's filtering options.
#[derive(Debug, Clone)]
pub struct Tracer {
    level: TraceLevel,
    /// Restrict to these TCUs (None = all; master always included).
    tcu_filter: Option<BTreeSet<u32>>,
    /// Restrict to these instruction indices (None = all).
    pc_filter: Option<BTreeSet<u32>>,
    /// Stop recording past this many records (guard against gigantic
    /// traces; the count of dropped records is kept).
    max_records: usize,
    records: Vec<TraceEvent>,
    dropped: u64,
}

json_struct!(Tracer { level, tcu_filter, pc_filter, max_records, records, dropped });

impl Tracer {
    /// A tracer capturing everything at the given level.
    pub fn new(level: TraceLevel) -> Self {
        Tracer {
            level,
            tcu_filter: None,
            pc_filter: None,
            max_records: 1_000_000,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Only record activity of the given TCUs.
    pub fn with_tcus(mut self, tcus: impl IntoIterator<Item = u32>) -> Self {
        self.tcu_filter = Some(tcus.into_iter().collect());
        self
    }

    /// Only record activity of the given instruction indices.
    pub fn with_pcs(mut self, pcs: impl IntoIterator<Item = u32>) -> Self {
        self.pc_filter = Some(pcs.into_iter().collect());
        self
    }

    /// Cap the number of stored records.
    pub fn with_max_records(mut self, max: usize) -> Self {
        self.max_records = max;
        self
    }

    /// Record an event (applying level and filters).
    pub fn record(&mut self, ev: TraceEvent) {
        if self.level == TraceLevel::Functional && !matches!(ev, TraceEvent::Issue { .. }) {
            return;
        }
        if let Some(f) = &self.tcu_filter {
            if let Some(t) = ev.tcu() {
                if !f.contains(&t) {
                    return;
                }
            }
        }
        if let Some(f) = &self.pc_filter {
            if !f.contains(&ev.pc()) {
                return;
            }
        }
        if self.records.len() >= self.max_records {
            self.dropped += 1;
            return;
        }
        self.records.push(ev);
    }

    /// The collected records.
    pub fn records(&self) -> &[TraceEvent] {
        &self.records
    }

    /// Records dropped due to the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render the trace as text, one record per line.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for r in &self.records {
            s.push_str(&r.to_string());
            s.push('\n');
        }
        if self.dropped > 0 {
            s.push_str(&format!(
                "... {} records dropped (max_records={})\n",
                self.dropped, self.max_records
            ));
        }
        s
    }

    /// Sanity check: records are in nondecreasing time order.
    pub fn is_time_ordered(&self) -> bool {
        self.records.windows(2).all(|w| w[0].time() <= w[1].time())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn functional_level_drops_package_events() {
        let mut t = Tracer::new(TraceLevel::Functional);
        t.record(TraceEvent::Issue { time: 1, tcu: Some(0), pc: 5 });
        t.record(TraceEvent::Service { time: 2, tcu: 0, addr: 0x100, pc: 5 });
        assert_eq!(t.records().len(), 1);
    }

    #[test]
    fn tcu_filter_keeps_master() {
        let mut t = Tracer::new(TraceLevel::CycleAccurate).with_tcus([3]);
        t.record(TraceEvent::Issue { time: 1, tcu: Some(2), pc: 0 });
        t.record(TraceEvent::Issue { time: 2, tcu: Some(3), pc: 0 });
        t.record(TraceEvent::Issue { time: 3, tcu: None, pc: 0 });
        assert_eq!(t.records().len(), 2);
    }

    #[test]
    fn pc_filter_and_cap() {
        let mut t = Tracer::new(TraceLevel::CycleAccurate)
            .with_pcs([7])
            .with_max_records(2);
        for k in 0..5 {
            t.record(TraceEvent::Issue { time: k, tcu: Some(0), pc: 7 });
            t.record(TraceEvent::Issue { time: k, tcu: Some(0), pc: 8 });
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.to_text().contains("3 records dropped"));
    }

    /// Regression: the truncation footer used to omit the cap, so a
    /// reader couldn't tell how to raise it. It must name `max_records`.
    #[test]
    fn truncation_footer_names_the_cap() {
        let mut t = Tracer::new(TraceLevel::CycleAccurate).with_max_records(2);
        for k in 0..5 {
            t.record(TraceEvent::Issue { time: k, tcu: Some(0), pc: 0 });
        }
        let text = t.to_text();
        assert!(
            text.contains("... 3 records dropped (max_records=2)"),
            "footer missing or unspecific: {text}"
        );
        // No footer at all when nothing was dropped.
        let mut t = Tracer::new(TraceLevel::CycleAccurate);
        t.record(TraceEvent::Issue { time: 0, tcu: Some(0), pc: 0 });
        assert!(!t.to_text().contains("dropped"));
    }

    #[test]
    fn text_rendering_shape() {
        let mut t = Tracer::new(TraceLevel::CycleAccurate);
        t.record(TraceEvent::Issue { time: 10, tcu: None, pc: 1 });
        t.record(TraceEvent::Complete { time: 20, tcu: 4, addr: 0x1000_0000, pc: 2 });
        let text = t.to_text();
        assert!(text.contains("master"));
        assert!(text.contains("tcu0004"));
        assert!(text.contains("[0x10000000]"));
        assert!(t.is_time_ordered());
    }
}
