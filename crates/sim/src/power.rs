//! Power estimation, thermal modeling and dynamic management
//! (paper §III-B and §III-F).
//!
//! The power output of XMTSim is computed as a function of the activity
//! counters and fed to a thermal model for temperature estimation — the
//! original pairs with HotSpot over JNI; here [`ThermalGrid`] plays that
//! role with the same underlying physics (an RC network over the
//! floorplan, solved by explicit time stepping). On top of both sits
//! [`ThermalGovernor`], an activity plug-in demonstrating the runtime
//! power/thermal management API: it watches per-interval activity,
//! estimates power and temperature, and throttles the cluster clock
//! domain when a temperature threshold is exceeded.

use crate::config::{ClockDomain, XmtConfig};
use crate::stats::{ActivityPlugin, ActivitySample, RuntimeCtl, Stats};
use xmt_harness::json_struct;

/// Energy/leakage coefficients of the power model.
///
/// Units: energies in picojoules per event; leakage in watts per
/// structure. Defaults are plausible 45 nm-class numbers; the *shape* of
/// results (memory-bound phases burn ICN/DRAM power, compute-bound phases
/// burn cluster power) is what experiments rely on, as with the paper's
/// own "refining the power model" caveat.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerWeights {
    /// Energy per instruction executed in a cluster (pJ).
    pub pj_per_instr: f64,
    /// Extra energy per MDU/FPU operation (pJ).
    pub pj_per_fp: f64,
    /// Energy per ICN package hop (pJ).
    pub pj_per_icn: f64,
    /// Energy per cache-module access (pJ).
    pub pj_per_cache: f64,
    /// Energy per DRAM line transfer (pJ).
    pub pj_per_dram: f64,
    /// Leakage per cluster (W).
    pub leak_cluster_w: f64,
    /// Leakage of the ICN (W).
    pub leak_icn_w: f64,
    /// Leakage per cache module (W).
    pub leak_cache_w: f64,
}

json_struct!(PowerWeights {
    pj_per_instr, pj_per_fp, pj_per_icn, pj_per_cache, pj_per_dram,
    leak_cluster_w, leak_icn_w, leak_cache_w,
});

impl Default for PowerWeights {
    fn default() -> Self {
        PowerWeights {
            pj_per_instr: 55.0,
            pj_per_fp: 220.0,
            pj_per_icn: 18.0,
            pj_per_cache: 40.0,
            pj_per_dram: 2600.0,
            leak_cluster_w: 0.08,
            leak_icn_w: 1.5,
            leak_cache_w: 0.05,
        }
    }
}

/// Power broken down by clock domain (watts).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PowerBreakdown {
    pub cluster_w: f64,
    pub icn_w: f64,
    pub cache_w: f64,
    pub dram_w: f64,
}

json_struct!(PowerBreakdown { cluster_w, icn_w, cache_w, dram_w });

impl PowerBreakdown {
    /// Total chip power (watts).
    pub fn total(&self) -> f64 {
        self.cluster_w + self.icn_w + self.cache_w + self.dram_w
    }
}

/// Activity-counter-driven power model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerModel {
    pub weights: PowerWeights,
}

json_struct!(PowerModel { weights });

impl PowerModel {
    /// Chip power over an interval: `delta` holds the counter increments,
    /// `dt_ps` the interval length in simulated picoseconds.
    ///
    /// Dynamic energy scales with activity; leakage with structure count.
    /// Frequency scaling lowers power because the same work is spread
    /// over more picoseconds.
    pub fn power(&self, cfg: &XmtConfig, delta: &Stats, dt_ps: u64) -> PowerBreakdown {
        if dt_ps == 0 {
            return PowerBreakdown::default();
        }
        let dt_s = dt_ps as f64 * 1e-12;
        let w = &self.weights;
        let fp_ops = delta.by_fu[xmt_isa::FuKind::Mdu as usize]
            + delta.by_fu[xmt_isa::FuKind::Fpu as usize];
        let cluster_dyn =
            (delta.instructions as f64 * w.pj_per_instr + fp_ops as f64 * w.pj_per_fp) * 1e-12;
        let icn_dyn = delta.icn_packages as f64 * w.pj_per_icn * 1e-12;
        let cache_dyn = (delta.cache_hits + delta.cache_misses) as f64 * w.pj_per_cache * 1e-12;
        let dram_dyn = delta.dram_accesses as f64 * w.pj_per_dram * 1e-12;
        PowerBreakdown {
            cluster_w: cluster_dyn / dt_s + cfg.clusters as f64 * w.leak_cluster_w,
            icn_w: icn_dyn / dt_s + w.leak_icn_w,
            cache_w: cache_dyn / dt_s + cfg.cache_modules as f64 * w.leak_cache_w,
            dram_w: dram_dyn / dt_s,
        }
    }

    /// Split the cluster-domain power over the clusters proportionally to
    /// their instruction activity (for the thermal grid and floorplan).
    pub fn per_cluster(&self, cfg: &XmtConfig, delta: &Stats, total_cluster_w: f64) -> Vec<f64> {
        let total: u64 = delta.per_cluster.iter().sum();
        let n = cfg.clusters as usize;
        if total == 0 {
            return vec![total_cluster_w / n as f64; n];
        }
        delta
            .per_cluster
            .iter()
            .map(|&c| total_cluster_w * c as f64 / total as f64)
            .collect()
    }
}

/// Transient RC thermal model over the cluster floorplan — the stand-in
/// for HotSpot. Clusters form a √n × √n grid; each node has a thermal
/// capacitance, lateral conductances to its grid neighbours and a vertical
/// conductance to the ambient (heat sink).
///
/// The default constants are *demo-scale*: thermal time constants of real
/// packages are tens of milliseconds, far longer than typical simulated
/// runs, so the defaults are chosen to develop transients within ~100 µs
/// of simulated time. Studies needing physical time constants should set
/// `capacitance`/`g_lateral`/`g_ambient` to package-accurate values.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalGrid {
    cols: usize,
    rows: usize,
    /// Node temperatures (°C).
    pub temp_c: Vec<f64>,
    /// Ambient / heat-sink temperature (°C).
    pub ambient_c: f64,
    /// Thermal capacitance per node (J/K).
    pub capacitance: f64,
    /// Lateral conductance between neighbours (W/K).
    pub g_lateral: f64,
    /// Vertical conductance to ambient (W/K).
    pub g_ambient: f64,
}

json_struct!(ThermalGrid { cols, rows, temp_c, ambient_c, capacitance, g_lateral, g_ambient });

impl ThermalGrid {
    /// A grid with one node per cluster, starting at ambient.
    pub fn new(clusters: u32) -> Self {
        let cols = (clusters as f64).sqrt().ceil() as usize;
        let rows = (clusters as usize).div_ceil(cols);
        ThermalGrid {
            cols,
            rows,
            temp_c: vec![45.0; clusters as usize],
            ambient_c: 45.0,
            capacitance: 2.0e-6,
            g_lateral: 0.05,
            g_ambient: 0.02,
        }
    }

    /// Advance the model by `dt_s` seconds with `power_w[i]` watts
    /// injected at node `i`. Internally sub-steps to keep the explicit
    /// integration stable.
    pub fn step(&mut self, power_w: &[f64], dt_s: f64) {
        assert_eq!(power_w.len(), self.temp_c.len());
        // Stability bound for explicit Euler on an RC grid.
        let g_total = 4.0 * self.g_lateral + self.g_ambient;
        let max_dt = 0.5 * self.capacitance / g_total;
        let steps = (dt_s / max_dt).ceil().max(1.0) as usize;
        let h = dt_s / steps as f64;
        let n = self.temp_c.len();
        let mut next = vec![0.0; n];
        for _ in 0..steps {
            for i in 0..n {
                let t = self.temp_c[i];
                let mut flow = power_w[i] + self.g_ambient * (self.ambient_c - t);
                for nb in self.neighbours(i) {
                    flow += self.g_lateral * (self.temp_c[nb] - t);
                }
                next[i] = t + h / self.capacitance * flow;
            }
            std::mem::swap(&mut self.temp_c, &mut next);
        }
    }

    fn neighbours(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, c) = (i / self.cols, i % self.cols);
        let n = self.temp_c.len();
        [
            (r.wrapping_sub(1), c),
            (r + 1, c),
            (r, c.wrapping_sub(1)),
            (r, c + 1),
        ]
        .into_iter()
        .filter_map(move |(rr, cc)| {
            (rr < self.rows && cc < self.cols)
                .then(|| rr * self.cols + cc)
                .filter(|&j| j < n)
        })
    }

    /// Hottest node temperature (°C).
    pub fn max_temp(&self) -> f64 {
        self.temp_c.iter().copied().fold(f64::MIN, f64::max)
    }
}

/// One record of the governor's sampled history.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalRecord {
    /// Simulated time (ps).
    pub time_ps: u64,
    /// Chip power (W).
    pub power_w: f64,
    /// Peak temperature (°C).
    pub max_temp_c: f64,
    /// Cluster-domain period in force (ps).
    pub cluster_period_ps: u64,
}

json_struct!(ThermalRecord { time_ps, power_w, max_temp_c, cluster_period_ps });

/// An activity plug-in implementing closed-loop dynamic thermal
/// management: estimate power from activity deltas, integrate the thermal
/// grid, and throttle/boost the cluster clock around a temperature
/// threshold — the §III-F capability the paper calls unique to XMTSim
/// among public many-core simulators.
pub struct ThermalGovernor {
    cfg: XmtConfig,
    model: PowerModel,
    grid: ThermalGrid,
    /// Throttle above this peak temperature (°C).
    pub threshold_c: f64,
    /// Period multiplier applied when throttling (e.g. 2 = half speed).
    pub throttle_factor: u64,
    nominal_period: u64,
    last_time: u64,
    throttled: bool,
    /// Enable control (false = monitor only, for baselines).
    pub control: bool,
    /// Sampled history for reporting/plotting.
    pub history: Vec<ThermalRecord>,
}

impl ThermalGovernor {
    /// A governor for configuration `cfg` with the given threshold.
    pub fn new(cfg: XmtConfig, threshold_c: f64, control: bool) -> Self {
        let grid = ThermalGrid::new(cfg.clusters);
        let nominal_period = cfg.period_ps[ClockDomain::Cluster as usize];
        ThermalGovernor {
            model: PowerModel::default(),
            grid,
            threshold_c,
            throttle_factor: 2,
            nominal_period,
            last_time: 0,
            throttled: false,
            control,
            history: Vec::new(),
            cfg,
        }
    }

    /// Peak temperature seen across the run.
    pub fn peak_temp(&self) -> f64 {
        self.history.iter().map(|r| r.max_temp_c).fold(f64::MIN, f64::max)
    }

    /// Mean power across the run (W).
    pub fn mean_power(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        self.history.iter().map(|r| r.power_w).sum::<f64>() / self.history.len() as f64
    }
}

impl ActivityPlugin for ThermalGovernor {
    fn sample(&mut self, s: &ActivitySample<'_>, ctl: &mut RuntimeCtl) {
        let dt_ps = s.now.saturating_sub(self.last_time);
        self.last_time = s.now;
        if dt_ps == 0 {
            return;
        }
        let power = self.model.power(&self.cfg, &s.delta, dt_ps);
        let per_cluster = self.model.per_cluster(&self.cfg, &s.delta, power.cluster_w);
        self.grid.step(&per_cluster, dt_ps as f64 * 1e-12);
        let max_t = self.grid.max_temp();
        if self.control {
            if max_t > self.threshold_c && !self.throttled {
                self.throttled = true;
                ctl.period_ps[ClockDomain::Cluster as usize] =
                    self.nominal_period * self.throttle_factor;
            } else if max_t < self.threshold_c - 3.0 && self.throttled {
                self.throttled = false;
                ctl.period_ps[ClockDomain::Cluster as usize] = self.nominal_period;
            }
        }
        self.history.push(ThermalRecord {
            time_ps: s.now,
            power_w: power.total(),
            max_temp_c: max_t,
            cluster_period_ps: ctl.period_ps[ClockDomain::Cluster as usize],
        });
    }

    fn report(&self) -> String {
        format!(
            "thermal governor: {} samples, peak {:.1} C, mean power {:.1} W, control {}",
            self.history.len(),
            self.peak_temp(),
            self.mean_power(),
            if self.control { "on" } else { "off" }
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta_with(instr: u64, dram: u64, icn: u64) -> Stats {
        let mut s = Stats::for_topology(8, 8);
        s.instructions = instr;
        s.per_cluster = vec![instr / 8; 8];
        s.dram_accesses = dram;
        s.icn_packages = icn;
        s
    }

    #[test]
    fn power_scales_with_activity() {
        let cfg = XmtConfig::fpga64();
        let m = PowerModel::default();
        let idle = m.power(&cfg, &delta_with(0, 0, 0), 1_000_000);
        let busy = m.power(&cfg, &delta_with(100_000, 1000, 50_000), 1_000_000);
        assert!(busy.total() > idle.total() * 2.0);
        // Idle power is pure leakage.
        assert!(idle.total() > 0.0);
        assert_eq!(idle.dram_w, 0.0);
    }

    #[test]
    fn per_cluster_split_follows_activity() {
        let cfg = XmtConfig::fpga64();
        let m = PowerModel::default();
        let mut d = delta_with(1000, 0, 0);
        d.per_cluster = vec![0, 0, 0, 0, 0, 0, 0, 1000];
        let split = m.per_cluster(&cfg, &d, 8.0);
        assert_eq!(split[7], 8.0);
        assert_eq!(split[0], 0.0);
    }

    #[test]
    fn thermal_grid_heats_and_cools() {
        let mut g = ThermalGrid::new(16);
        let hot = vec![2.0; 16];
        g.step(&hot, 0.05);
        assert!(g.max_temp() > 45.5);
        let t_hot = g.max_temp();
        g.step(&[0.0; 16], 0.5);
        assert!(g.max_temp() < t_hot, "cooling towards ambient");
        // Never below ambient.
        assert!(g.temp_c.iter().all(|&t| t >= 44.9));
    }

    #[test]
    fn thermal_grid_hotspot_diffuses() {
        let mut g = ThermalGrid::new(16);
        let mut p = vec![0.0; 16];
        p[5] = 5.0;
        g.step(&p, 0.02);
        let t5 = g.temp_c[5];
        let t_far = g.temp_c[15];
        assert!(t5 > t_far, "heat source node is hottest");
        // Neighbours are warmer than far corners.
        assert!(g.temp_c[1] > t_far);
    }

    #[test]
    fn governor_throttles_above_threshold() {
        let cfg = XmtConfig::tiny();
        let mut gov = ThermalGovernor::new(cfg.clone(), 46.0, true);
        let mut ctl = RuntimeCtl { period_ps: cfg.period_ps, stop: false };
        // Feed hot samples until the threshold trips.
        // 1 ms sampling intervals, ~2 G instructions per interval: a
        // sustained ~100 W load on a 2-cluster toy chip.
        let mut d = Stats::for_topology(cfg.clusters, cfg.cache_modules);
        d.instructions = 2_000_000_000;
        d.per_cluster = vec![1_000_000_000; 2];
        d.dram_accesses = 10_000_000;
        for k in 1..=200u64 {
            let stats = Stats::for_topology(cfg.clusters, cfg.cache_modules);
            let sample = ActivitySample {
                now: k * 1_000_000_000,
                stats: &stats,
                delta: d.clone(),
                period_ps: ctl.period_ps,
            };
            gov.sample(&sample, &mut ctl);
        }
        assert!(gov.peak_temp() > 46.0);
        assert_eq!(ctl.period_ps[0], cfg.period_ps[0] * 2, "cluster clock throttled");
        assert!(gov.report().contains("control on"));
    }
}
