//! Observability layer: timeline export + metrics registry (§III-D/E).
//!
//! The paper's methodology hinges on *studying* the simulator — host-time
//! profiles and execution traces — and this module is the machine-readable
//! substrate for that: a [`Timeline`] recorder that exports Chrome
//! `trace_event` JSON (Perfetto / `chrome://tracing`), and a
//! [`MetricsRegistry`] that unifies [`Stats`](crate::stats::Stats),
//! [`HostProfile`](crate::cycle::HostProfile) and the decode/burst/express
//! counters behind one named schema.
//!
//! Design constraints, in priority order:
//!
//! 1. **Zero overhead when disabled.** [`CycleSim`](crate::cycle::CycleSim)
//!    holds `Option<Box<Obs>>`; with [`ObsDetail::Off`] nothing is
//!    allocated and every hook is one `Option` test — the same discipline
//!    `host_profile` already follows.
//! 2. **Equivalence-preserving when enabled.** Unlike
//!    [`Tracer`](crate::trace::Tracer) attachment and filter plug-ins —
//!    which deliberately degrade burst issue and decoded replay to get
//!    per-instruction visibility — the observability hooks sit at event
//!    *handler* boundaries that both issue models and both engines pass
//!    through identically. Enabling observability changes no cycle count,
//!    no simulated time, no statistic and no byte of the memory image;
//!    `differential::check_obs_transparent` and the 256-case `obs_diff`
//!    suite enforce this continuously.
//! 3. **Deterministic recording.** In the parallel engine every event is
//!    handled (and every phase-A burst committed) on the coordinator
//!    thread in canonical `(time, priority, seq)` batch order, so
//!    simulated-time records are appended in exactly the sequential
//!    engine's order; worker threads never touch the recorder.
//!
//! Track layout (see [`timeline`] for the pid/tid encoding):
//!
//! * simulated time (pid 1): parallel sections, DVFS epoch markers,
//!   periodic metric samples, per-cluster active-TCU counters, per-TCU
//!   occupancy spans, per-TCU ICN flight spans, per-module queue-depth
//!   counters;
//! * host time (pid 2, [`ObsDetail::Full`] only): scheduler `pop_cycle`
//!   windows, parallel-engine offload/barrier spans, decode-cache replay
//!   markers.

pub mod metrics;
pub mod timeline;

pub use metrics::{Metric, MetricKind, MetricValue, MetricsRegistry, METRICS_SCHEMA};
pub use timeline::{Ph, TimeDomain, Timeline, TraceRecord};

use crate::config::{ObsDetail, XmtConfig};
use crate::engine::Time;
use crate::stats::Stats;
use std::time::Instant;

// Simulated-time track ids (pid 1). Public so external consumers of the
// exported trace can address tracks without parsing thread_name metadata.

/// Spawn/join section spans.
pub const TID_SECTIONS: u32 = 0;
/// DVFS epoch markers.
pub const TID_DVFS: u32 = 1;
/// Periodic metric-sample counters.
pub const TID_METRICS: u32 = 2;
/// Per-cluster active-TCU counters (`TID_CLUSTER0 + cluster`).
pub const TID_CLUSTER0: u32 = 100;
/// Per-TCU occupancy spans (`TID_TCU0 + tcu`).
pub const TID_TCU0: u32 = 10_000;
/// The Master TCU's ICN flight spans.
pub const TID_MASTER_MEM: u32 = 19_999;
/// Per-TCU ICN flight spans (`TID_TCU_MEM0 + tcu`).
pub const TID_TCU_MEM0: u32 = 20_000;
/// Per-cache-module queue-depth counters (`TID_MODULE0 + module`).
pub const TID_MODULE0: u32 = 40_000;

// Host-time track ids (pid 2).

/// Scheduler `pop_cycle` window spans.
pub const TID_SCHED: u32 = 0;
/// Parallel-engine offload/barrier spans.
pub const TID_PAR: u32 = 1;
/// Decode-cache replay markers.
pub const TID_DECODE: u32 = 2;

/// Recorder state owned by a `CycleSim` (one per simulator).
#[derive(Debug, Clone)]
pub struct Obs {
    detail: ObsDetail,
    /// The span/counter recorder both halves feed.
    pub timeline: Timeline,
    /// Host-clock origin for host-domain timestamps.
    origin: Instant,
    /// Current active-TCU count per cluster (counter tracks).
    cluster_active: Vec<i64>,
    /// Activation time of each TCU's current occupancy span, if active.
    tcu_active_since: Vec<Option<Time>>,
    /// Current queue depth per cache module (counter tracks).
    module_queue: Vec<i64>,
}

impl Obs {
    /// A recorder for the given detail level and chip topology.
    pub fn new(detail: ObsDetail, cfg: &XmtConfig) -> Self {
        debug_assert_ne!(detail, ObsDetail::Off, "Off means no recorder at all");
        let mut timeline = Timeline::new();
        timeline.name_track(TimeDomain::Sim, TID_SECTIONS, "parallel sections");
        timeline.name_track(TimeDomain::Sim, TID_DVFS, "dvfs epochs");
        timeline.name_track(TimeDomain::Sim, TID_METRICS, "metric samples");
        if detail == ObsDetail::Full {
            timeline.name_track(TimeDomain::Host, TID_SCHED, "scheduler windows");
            timeline.name_track(TimeDomain::Host, TID_PAR, "parallel engine");
            timeline.name_track(TimeDomain::Host, TID_DECODE, "decode cache");
        }
        Obs {
            detail,
            timeline,
            origin: Instant::now(),
            cluster_active: vec![0; cfg.clusters as usize],
            tcu_active_since: vec![None; cfg.n_tcus() as usize],
            module_queue: vec![0; cfg.cache_modules as usize],
        }
    }

    /// The recording level.
    pub fn detail(&self) -> ObsDetail {
        self.detail
    }

    /// Whether host-time tracks are recorded.
    #[inline]
    pub fn host_detail(&self) -> bool {
        self.detail == ObsDetail::Full
    }

    /// Nanoseconds since the recorder was created (host domain).
    fn host_now(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }

    // ----------------------------------------------------- sim-time hooks

    /// A TCU was activated for a parallel section: open its occupancy
    /// span and bump its cluster's active counter.
    pub fn tcu_activate(&mut self, now: Time, cluster: u32, tcu: u32) {
        let t = tcu as usize;
        if self.tcu_active_since[t].is_some() {
            return;
        }
        self.tcu_active_since[t] = Some(now);
        let c = cluster as usize;
        self.cluster_active[c] += 1;
        let tid = TID_CLUSTER0 + cluster;
        self.timeline
            .name_track(TimeDomain::Sim, tid, &format!("cluster {cluster} active TCUs"));
        self.timeline.counter(
            TimeDomain::Sim,
            tid,
            "active_tcus",
            "occupancy",
            now,
            self.cluster_active[c],
        );
    }

    /// A TCU parked (no thread left to grab): close its occupancy span.
    pub fn tcu_park(&mut self, now: Time, cluster: u32, tcu: u32) {
        let t = tcu as usize;
        let Some(since) = self.tcu_active_since[t].take() else {
            return;
        };
        let c = cluster as usize;
        self.cluster_active[c] -= 1;
        let tid = TID_TCU0 + tcu;
        self.timeline
            .name_track(TimeDomain::Sim, tid, &format!("tcu {tcu}"));
        self.timeline.span(
            TimeDomain::Sim,
            tid,
            "active",
            "occupancy",
            since,
            now.saturating_sub(since),
        );
        let ctid = TID_CLUSTER0 + cluster;
        self.timeline.counter(
            TimeDomain::Sim,
            ctid,
            "active_tcus",
            "occupancy",
            now,
            self.cluster_active[c],
        );
    }

    /// A parallel section closed: record its spawn→join span.
    pub fn spawn_section(&mut self, threads: u64, start: Time, end: Time) {
        self.timeline.span(
            TimeDomain::Sim,
            TID_SECTIONS,
            format!("spawn ×{threads}"),
            "spawn",
            start,
            end.saturating_sub(start),
        );
    }

    /// A memory package completed its request-network flight and arrived
    /// at cache module `m` (both ICN models funnel through here).
    pub fn mem_flight(&mut self, tcu: u32, master: bool, module: u32, pc: u32, issued_at: Time, now: Time) {
        let tid = if master {
            self.timeline
                .name_track(TimeDomain::Sim, TID_MASTER_MEM, "master icn");
            TID_MASTER_MEM
        } else {
            let tid = TID_TCU_MEM0 + tcu;
            self.timeline
                .name_track(TimeDomain::Sim, tid, &format!("tcu {tcu} icn"));
            tid
        };
        self.timeline.span(
            TimeDomain::Sim,
            tid,
            format!("→m{module} @{pc}"),
            "icn",
            issued_at,
            now.saturating_sub(issued_at),
        );
    }

    /// A request entered cache module `m`'s queue.
    pub fn module_enqueue(&mut self, m: u32, now: Time) {
        self.module_queue[m as usize] += 1;
        self.module_depth(m, now);
    }

    /// A request left cache module `m`'s queue (service point).
    pub fn module_dequeue(&mut self, m: u32, now: Time) {
        self.module_queue[m as usize] -= 1;
        self.module_depth(m, now);
    }

    fn module_depth(&mut self, m: u32, now: Time) {
        let tid = TID_MODULE0 + m;
        self.timeline
            .name_track(TimeDomain::Sim, tid, &format!("module {m} queue"));
        self.timeline.counter(
            TimeDomain::Sim,
            tid,
            "queue_depth",
            "cache",
            now,
            self.module_queue[m as usize],
        );
    }

    /// A DVFS epoch began (clock-domain periods changed).
    pub fn dvfs_epoch(&mut self, now: Time, periods: [u64; 4]) {
        self.timeline.instant(
            TimeDomain::Sim,
            TID_DVFS,
            format!(
                "periods cluster={} icn={} cache={} dram={} ps",
                periods[0], periods[1], periods[2], periods[3]
            ),
            "dvfs",
            now,
        );
    }

    /// A periodic sample tick: put headline counters on the timeline.
    pub fn sample_metrics(&mut self, now: Time, stats: &Stats) {
        for (name, v) in [
            ("instructions", stats.instructions),
            ("virtual_threads", stats.virtual_threads),
            ("cache_misses", stats.cache_misses),
            ("icn_packages", stats.icn_packages),
        ] {
            self.timeline
                .counter(TimeDomain::Sim, TID_METRICS, name, "metrics", now, v as i64);
        }
    }

    // ---------------------------------------------------- host-time hooks

    /// One scheduler `pop_cycle`/window-merge drain took `dur`.
    pub fn sched_window(&mut self, dur: std::time::Duration) {
        let dur = dur.as_nanos() as u64;
        let end = self.host_now();
        self.timeline.span(
            TimeDomain::Host,
            TID_SCHED,
            "pop_cycle",
            "sched",
            end.saturating_sub(dur),
            dur,
        );
    }

    /// One parallel-engine phase-A offload (fan-out + barrier) of
    /// `tasks` bursts took `dur`.
    pub fn offload_barrier(&mut self, tasks: usize, dur: std::time::Duration) {
        let dur = dur.as_nanos() as u64;
        let end = self.host_now();
        self.timeline.span(
            TimeDomain::Host,
            TID_PAR,
            format!("offload ×{tasks}"),
            "parallel",
            end.saturating_sub(dur),
            dur,
        );
    }

    /// `n` decoded-block replays were committed.
    pub fn decode_replays(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        let now = self.host_now();
        self.timeline.instant(
            TimeDomain::Host,
            TID_DECODE,
            format!("replay ×{n}"),
            "decode",
            now,
        );
    }
}
