//! Structured metrics registry (`metrics.json` sidecar schema).
//!
//! One named, ordered, machine-readable schema over everything the
//! toolchain previously reported through one-off printouts: the built-in
//! [`Stats`] counters, the host-time [`HostProfile`], and the
//! decode/burst/express acceleration counters. The same registry backs
//! the `xmtsim-cli --metrics-out` sidecar and the `icn_profile --json`
//! bench output, so every consumer reads one format.
//!
//! Schema (`xmtsim.metrics.v1`):
//!
//! ```json
//! {"schema": "xmtsim.metrics.v1",
//!  "metrics": [
//!    {"name": "sim.cycles", "kind": "counter", "value": 12034},
//!    {"name": "host.memory_fraction", "kind": "gauge", "value": 0.61},
//!    {"name": "host.burst_len_hist", "kind": "histogram", "value": [0,1,5]}
//!  ]}
//! ```
//!
//! `counter` values are exact `u64`, `gauge` values are `f64`, and
//! `histogram` values are bucket vectors. Members keep insertion order
//! (the harness JSON encoder is deterministic), so two runs of the same
//! build diff cleanly.

use crate::cycle::{HostProfile, RunSummary};
use crate::stats::Stats;
use xmt_harness::json::json_field;
use xmt_harness::{FromJson, Json, JsonError, ToJson};

/// Metric kinds of the `xmtsim.metrics.v1` schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count (exact integer).
    Counter,
    /// Point-in-time measurement (floating point).
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A metric's value, typed by its kind.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    U(u64),
    F(f64),
    Hist(Vec<u64>),
}

/// One named metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    pub name: String,
    pub kind: MetricKind,
    pub value: MetricValue,
}

impl ToJson for Metric {
    fn to_json(&self) -> Json {
        let value = match &self.value {
            MetricValue::U(v) => Json::U(*v),
            MetricValue::F(v) => Json::F(*v),
            MetricValue::Hist(v) => Json::Arr(v.iter().map(|&b| Json::U(b)).collect()),
        };
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("kind".into(), Json::Str(self.kind.as_str().into())),
            ("value".into(), value),
        ])
    }
}

impl FromJson for Metric {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let members = json.as_obj()?;
        let name: String = json_field(members, "name")?;
        let kind: String = json_field(members, "kind")?;
        let value = members
            .iter()
            .find(|(k, _)| k == "value")
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::new("metric missing `value`"))?;
        let (kind, value) = match kind.as_str() {
            "counter" => (MetricKind::Counter, MetricValue::U(u64::from_json(value)?)),
            "gauge" => (MetricKind::Gauge, MetricValue::F(f64::from_json(value)?)),
            "histogram" => (
                MetricKind::Histogram,
                MetricValue::Hist(Vec::<u64>::from_json(value)?),
            ),
            other => return Err(JsonError::new(format!("unknown metric kind `{other}`"))),
        };
        Ok(Metric { name, kind, value })
    }
}

/// The schema identifier every registry dump carries.
pub const METRICS_SCHEMA: &str = "xmtsim.metrics.v1";

/// An ordered collection of named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    pub metrics: Vec<Metric>,
}

impl ToJson for MetricsRegistry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(METRICS_SCHEMA.into())),
            (
                "metrics".into(),
                Json::Arr(self.metrics.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

impl FromJson for MetricsRegistry {
    fn from_json(json: &Json) -> Result<Self, JsonError> {
        let members = json.as_obj()?;
        let schema: String = json_field(members, "schema")?;
        if schema != METRICS_SCHEMA {
            return Err(JsonError::new(format!("unknown metrics schema `{schema}`")));
        }
        Ok(MetricsRegistry {
            metrics: json_field(members, "metrics")?,
        })
    }
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an exact-integer counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.metrics.push(Metric {
            name: name.into(),
            kind: MetricKind::Counter,
            value: MetricValue::U(value),
        });
    }

    /// Append a floating-point gauge. Non-finite values are recorded as
    /// `0.0` (the harness encoder rejects NaN/inf by design).
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push(Metric {
            name: name.into(),
            kind: MetricKind::Gauge,
            value: MetricValue::F(if value.is_finite() { value } else { 0.0 }),
        });
    }

    /// Append a bucketed histogram.
    pub fn histogram(&mut self, name: impl Into<String>, buckets: impl Into<Vec<u64>>) {
        self.metrics.push(Metric {
            name: name.into(),
            kind: MetricKind::Histogram,
            value: MetricValue::Hist(buckets.into()),
        });
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// The architectural-side metrics of a finished (or paused) run:
    /// the run summary plus every built-in [`Stats`] counter, under the
    /// `sim.` prefix.
    pub fn add_run(&mut self, summary: &RunSummary, stats: &Stats) {
        self.counter("sim.cycles", summary.cycles);
        self.counter("sim.time_ps", summary.time_ps);
        self.counter("sim.instructions", summary.instructions);
        self.counter("sim.events", summary.events);
        self.counter("sim.master_instructions", stats.master_instructions);
        self.counter("sim.tcu_instructions", stats.tcu_instructions);
        self.histogram("sim.instructions_by_fu", stats.by_fu.to_vec());
        self.histogram("sim.instructions_per_cluster", stats.per_cluster.clone());
        self.counter("sim.spawns", stats.spawns);
        self.counter("sim.virtual_threads", stats.virtual_threads);
        self.histogram("sim.module_accesses", stats.module_accesses.clone());
        self.counter("sim.cache_hits", stats.cache_hits);
        self.counter("sim.cache_misses", stats.cache_misses);
        self.counter("sim.master_hits", stats.master_hits);
        self.counter("sim.master_misses", stats.master_misses);
        self.counter("sim.ro_hits", stats.ro_hits);
        self.counter("sim.ro_misses", stats.ro_misses);
        self.counter("sim.prefetch_hits", stats.prefetch_hits);
        self.counter("sim.prefetches", stats.prefetches);
        self.counter("sim.dram_accesses", stats.dram_accesses);
        self.counter("sim.icn_packages", stats.icn_packages);
        self.counter("sim.psm_ops", stats.psm_ops);
        self.counter("sim.ps_ops", stats.ps_ops);
        self.counter("sim.mem_wait_ps", stats.mem_wait_ps);
        self.counter("sim.fence_wait_ps", stats.fence_wait_ps);
    }

    /// The host-side metrics of a profiled run: event-handling time per
    /// component class plus the burst/express/decode acceleration
    /// counters, under the `host.` prefix.
    pub fn add_host_profile(&mut self, hp: &HostProfile) {
        self.gauge("host.compute_s", hp.compute_s);
        self.gauge("host.memory_s", hp.memory_s);
        self.gauge("host.other_s", hp.other_s);
        self.gauge("host.sched_s", hp.sched_s);
        self.gauge("host.memory_fraction", hp.memory_fraction());
        self.counter("host.compute_events", hp.compute_events);
        self.counter("host.memory_events", hp.memory_events);
        self.counter("host.other_events", hp.other_events);
        self.counter("host.express_legs", hp.express_legs);
        self.counter("host.hops_elided", hp.hops_elided);
        self.counter("host.mem_drains", hp.mem_drains);
        self.counter("host.mem_elided", hp.mem_elided);
        self.counter("host.bursts", hp.bursts);
        self.counter("host.burst_instrs", hp.burst_instrs);
        self.gauge("host.mean_burst_len", hp.mean_burst_len());
        self.counter("host.burst_break_nonlocal", hp.burst_break_nonlocal);
        self.counter("host.burst_break_sample", hp.burst_break_sample);
        self.counter("host.burst_break_boundary", hp.burst_break_boundary);
        self.counter("host.burst_break_cap", hp.burst_break_cap);
        self.histogram("host.burst_len_hist", hp.burst_len_hist.to_vec());
        self.counter("host.blocks_decoded", hp.blocks_decoded);
        self.counter("host.block_replays", hp.block_replays);
        self.counter("host.replay_instrs", hp.replay_instrs);
        self.counter("host.fusions", hp.fusions);
        self.counter("host.decode_invalidations", hp.decode_invalidations);
    }

    /// Build the full registry for one run.
    pub fn for_run(summary: &RunSummary, stats: &Stats, hp: Option<&HostProfile>) -> Self {
        let mut reg = MetricsRegistry::new();
        reg.add_run(summary, stats);
        if let Some(hp) = hp {
            reg.add_host_profile(hp);
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_round_trips_through_json() {
        let mut reg = MetricsRegistry::new();
        reg.counter("sim.cycles", u64::MAX); // exact, no f64 detour
        reg.gauge("host.memory_fraction", 0.625);
        reg.histogram("host.burst_len_hist", vec![1, 2, 3]);
        let text = reg.to_json_string();
        assert!(text.contains(METRICS_SCHEMA));
        let back = MetricsRegistry::from_json_str(&text).unwrap();
        assert_eq!(back, reg);
        assert_eq!(
            back.get("sim.cycles").unwrap().value,
            MetricValue::U(u64::MAX)
        );
    }

    #[test]
    fn unknown_schema_and_kind_are_rejected() {
        let bad = r#"{"schema":"other.v9","metrics":[]}"#;
        assert!(MetricsRegistry::from_json_str(bad).is_err());
        let bad = format!(
            r#"{{"schema":"{METRICS_SCHEMA}","metrics":[{{"name":"x","kind":"meter","value":1}}]}}"#
        );
        assert!(MetricsRegistry::from_json_str(&bad).is_err());
    }

    #[test]
    fn non_finite_gauges_are_sanitized() {
        let mut reg = MetricsRegistry::new();
        reg.gauge("g", f64::NAN);
        assert_eq!(reg.get("g").unwrap().value, MetricValue::F(0.0));
        // Must encode without panicking.
        let _ = reg.to_json_string();
    }
}
