//! Span/counter timeline recorder with Chrome `trace_event` export.
//!
//! The recorder keeps one flat vector of [`TraceRecord`]s in two time
//! domains — *simulated* time (picoseconds of the discrete-event clock)
//! and *host* time (nanoseconds of wall clock since the recorder was
//! created) — and serializes them into the Chrome `trace_event` JSON
//! format, loadable in Perfetto or `chrome://tracing`. Each domain
//! becomes one "process" (pid 1 = simulated time, pid 2 = host time) so
//! the two clock bases never share an axis; tracks inside a domain are
//! "threads" with human-readable `thread_name` metadata.
//!
//! Recording is bounded: past `max_records` new records are counted in
//! `dropped` instead of stored (the same guard [`crate::trace::Tracer`]
//! uses), and the export carries the drop count so truncation is never
//! silent.

use std::collections::BTreeMap;
use xmt_harness::Json;

/// Which clock a record's timestamps belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeDomain {
    /// Simulated picoseconds (the discrete-event clock).
    Sim,
    /// Host nanoseconds since the recorder was created.
    Host,
}

impl TimeDomain {
    /// The trace_event "process" this domain renders as.
    pub fn pid(self) -> u32 {
        match self {
            TimeDomain::Sim => 1,
            TimeDomain::Host => 2,
        }
    }

    fn process_name(self) -> &'static str {
        match self {
            TimeDomain::Sim => "simulated time",
            TimeDomain::Host => "host time",
        }
    }

    /// Convert a domain timestamp to trace_event microseconds.
    fn to_us(self, t: u64) -> f64 {
        match self {
            TimeDomain::Sim => t as f64 / 1e6,  // ps → µs
            TimeDomain::Host => t as f64 / 1e3, // ns → µs
        }
    }
}

/// The record shape (maps onto a trace_event `ph`).
#[derive(Debug, Clone, PartialEq)]
pub enum Ph {
    /// A complete span (`ph: "X"`): starts at `ts`, lasts `dur`.
    Span { dur: u64 },
    /// A counter sample (`ph: "C"`): track value at `ts`.
    Counter { value: i64 },
    /// A point marker (`ph: "i"`).
    Instant,
}

/// One recorded timeline entry.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    pub domain: TimeDomain,
    /// Track within the domain (trace_event `tid`).
    pub tid: u32,
    pub name: String,
    /// Event category (trace_event `cat`), used for filtering in the UI.
    pub cat: &'static str,
    /// Start timestamp in the domain's native unit (ps or ns).
    pub ts: u64,
    pub ph: Ph,
}

impl TraceRecord {
    /// End of the record on its track (spans extend past `ts`).
    fn end(&self) -> u64 {
        match self.ph {
            Ph::Span { dur } => self.ts + dur,
            _ => self.ts,
        }
    }
}

/// Bounded recorder for both time domains.
#[derive(Debug, Clone)]
pub struct Timeline {
    records: Vec<TraceRecord>,
    /// Human-readable names for (pid, tid) tracks, emitted as
    /// `thread_name` metadata.
    track_names: BTreeMap<(u32, u32), String>,
    max_records: usize,
    dropped: u64,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::new()
    }
}

impl Timeline {
    /// A recorder with the default record cap.
    pub fn new() -> Self {
        Timeline {
            records: Vec::new(),
            track_names: BTreeMap::new(),
            max_records: 1 << 20,
            dropped: 0,
        }
    }

    /// Cap the number of stored records.
    pub fn with_max_records(mut self, max: usize) -> Self {
        self.max_records = max;
        self
    }

    /// Register a human-readable name for a track. Idempotent; the first
    /// registration wins.
    pub fn name_track(&mut self, domain: TimeDomain, tid: u32, name: &str) {
        self.track_names
            .entry((domain.pid(), tid))
            .or_insert_with(|| name.to_string());
    }

    fn push(&mut self, r: TraceRecord) {
        if self.records.len() >= self.max_records {
            self.dropped += 1;
            return;
        }
        self.records.push(r);
    }

    /// Record a complete span `[ts, ts + dur]`.
    pub fn span(
        &mut self,
        domain: TimeDomain,
        tid: u32,
        name: impl Into<String>,
        cat: &'static str,
        ts: u64,
        dur: u64,
    ) {
        self.push(TraceRecord {
            domain,
            tid,
            name: name.into(),
            cat,
            ts,
            ph: Ph::Span { dur },
        });
    }

    /// Record a counter sample.
    pub fn counter(
        &mut self,
        domain: TimeDomain,
        tid: u32,
        name: impl Into<String>,
        cat: &'static str,
        ts: u64,
        value: i64,
    ) {
        self.push(TraceRecord {
            domain,
            tid,
            name: name.into(),
            cat,
            ts,
            ph: Ph::Counter { value },
        });
    }

    /// Record an instant marker.
    pub fn instant(
        &mut self,
        domain: TimeDomain,
        tid: u32,
        name: impl Into<String>,
        cat: &'static str,
        ts: u64,
    ) {
        self.push(TraceRecord {
            domain,
            tid,
            name: name.into(),
            cat,
            ts,
            ph: Ph::Instant,
        });
    }

    /// The recorded entries, in recording order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records dropped at the cap.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serialize to a Chrome `trace_event` JSON value: metadata first
    /// (process/thread names), then all records sorted by
    /// `(pid, tid, ts, end)` so every track reads in time order.
    pub fn to_chrome_json(&self) -> Json {
        let mut events: Vec<Json> = Vec::new();
        for domain in [TimeDomain::Sim, TimeDomain::Host] {
            if self.records.iter().any(|r| r.domain == domain)
                || self.track_names.keys().any(|&(p, _)| p == domain.pid())
            {
                events.push(Json::Obj(vec![
                    ("ph".into(), Json::Str("M".into())),
                    ("pid".into(), Json::U(domain.pid() as u64)),
                    ("name".into(), Json::Str("process_name".into())),
                    (
                        "args".into(),
                        Json::Obj(vec![(
                            "name".into(),
                            Json::Str(domain.process_name().into()),
                        )]),
                    ),
                ]));
            }
        }
        for (&(pid, tid), name) in &self.track_names {
            events.push(Json::Obj(vec![
                ("ph".into(), Json::Str("M".into())),
                ("pid".into(), Json::U(pid as u64)),
                ("tid".into(), Json::U(tid as u64)),
                ("name".into(), Json::Str("thread_name".into())),
                (
                    "args".into(),
                    Json::Obj(vec![("name".into(), Json::Str(name.clone()))]),
                ),
            ]));
        }
        let mut order: Vec<usize> = (0..self.records.len()).collect();
        order.sort_by_key(|&i| {
            let r = &self.records[i];
            (r.domain.pid(), r.tid, r.ts, r.end())
        });
        for i in order {
            let r = &self.records[i];
            let mut obj = vec![
                (
                    "ph".into(),
                    Json::Str(
                        match r.ph {
                            Ph::Span { .. } => "X",
                            Ph::Counter { .. } => "C",
                            Ph::Instant => "i",
                        }
                        .into(),
                    ),
                ),
                ("pid".into(), Json::U(r.domain.pid() as u64)),
                ("tid".into(), Json::U(r.tid as u64)),
                ("name".into(), Json::Str(r.name.clone())),
                ("cat".into(), Json::Str(r.cat.into())),
                ("ts".into(), Json::F(r.domain.to_us(r.ts))),
            ];
            match r.ph {
                Ph::Span { dur } => {
                    obj.push(("dur".into(), Json::F(r.domain.to_us(dur))));
                }
                Ph::Counter { value } => {
                    obj.push((
                        "args".into(),
                        Json::Obj(vec![("value".into(), Json::I(value))]),
                    ));
                }
                Ph::Instant => {
                    // Thread-scoped marker.
                    obj.push(("s".into(), Json::Str("t".into())));
                }
            }
            events.push(Json::Obj(obj));
        }
        Json::Obj(vec![
            ("traceEvents".into(), Json::Arr(events)),
            ("displayTimeUnit".into(), Json::Str("ns".into())),
            // Extension field (ignored by viewers): truncation is never
            // silent.
            ("droppedRecords".into(), Json::U(self.dropped)),
        ])
    }

    /// Serialize to Chrome `trace_event` JSON text.
    pub fn to_json_string(&self) -> String {
        self.to_chrome_json().encode()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_sorts_each_track_by_time() {
        let mut tl = Timeline::new();
        tl.name_track(TimeDomain::Sim, 7, "t7");
        // Recorded out of start order (spans are recorded at completion).
        tl.span(TimeDomain::Sim, 7, "b", "test", 2_000_000, 1_000_000);
        tl.span(TimeDomain::Sim, 7, "a", "test", 1_000_000, 500_000);
        let j = tl.to_chrome_json();
        let obj = j.as_obj().unwrap();
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .unwrap()
            .1
            .as_arr()
            .unwrap();
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| {
                let m = e.as_obj().ok()?;
                let ph = m.iter().find(|(k, _)| k == "ph")?.1.clone();
                if ph != Json::Str("X".into()) {
                    return None;
                }
                match &m.iter().find(|(k, _)| k == "name")?.1 {
                    Json::Str(s) => Some(s.as_str()),
                    _ => None,
                }
            })
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn cap_counts_dropped_records() {
        let mut tl = Timeline::new().with_max_records(1);
        tl.instant(TimeDomain::Host, 0, "x", "test", 1);
        tl.instant(TimeDomain::Host, 0, "y", "test", 2);
        assert_eq!(tl.records().len(), 1);
        assert_eq!(tl.dropped(), 1);
        assert!(tl.to_json_string().contains("\"droppedRecords\":1"));
    }

    #[test]
    fn timestamps_convert_to_microseconds() {
        // 3_000_000 ps = 3 µs (sim); 4_000 ns = 4 µs (host).
        assert_eq!(TimeDomain::Sim.to_us(3_000_000), 3.0);
        assert_eq!(TimeDomain::Host.to_us(4_000), 4.0);
    }
}
