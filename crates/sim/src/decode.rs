//! The pre-decoded basic-block cache (DESIGN.md §10).
//!
//! Burst issue ([`crate::config::IssueModel::Burst`]) elides scheduler
//! events, but still walks every instruction through `exec::issue`'s wide
//! [`xmt_isa::Instr`] match, every time around a loop. This module caches
//! the result of that classification: the first time a pc is executed
//! under the cache, the straight-line *basic block* starting there is
//! decoded once into a flat `Vec<DecodedOp>` — operands resolved, dense
//! tags, fused superinstructions for dependent pairs — and every later
//! visit *replays* the slice.
//!
//! Replay is a pure fast-forward. The burst loops in `cycle` (and the
//! parallel engine's worker-side `burst_local`) stay the referee: replay
//! executes decoded ops only while every burst break condition provably
//! holds ([`ReplayEnv::slot_blocked`] mirrors the oracle checks
//! condition-for-condition, checked per constituent instruction), and the
//! moment it stops — for any reason — control returns to the interpreted
//! loop, which re-evaluates the same conditions on the same state and
//! performs the exact break bookkeeping. Fused ops whose second
//! constituent would cross a boundary execute their first constituent
//! alone and bail, which is exactly where the interpreted loop would have
//! stopped. Bit-identity to the un-cached oracle therefore holds by
//! construction; the 256-case `decode_diff` suite enforces it anyway.
//!
//! The cache is a pure function of the immutable [`Executable::text`], so
//! invalidation ([`DecodeCache::invalidate_all`]) never affects
//! architectural state — it is issued on tracer/filter attachment and on
//! checkpoint restore (the checkpoint strategy: blocks are *deterministically
//! rebuilt* on demand rather than serialized, so checkpoint bytes are
//! unchanged by the cache).

use crate::cycle::BURST_CAP;
use crate::engine::Time;
use crate::machine::ThreadCtx;
use xmt_isa::decode::{fuse, BinAlu, BrCond, CmpOp, DecodedOp, ImmAlu, ShKind};
use xmt_isa::{decode::decode_instr, Executable, Reg};

/// Count-array slots for the four cost classes a pure-local op can have —
/// the same `[Alu, Sft, Br, Ctl]` layout the parallel engine's
/// `StepDone::counts` uses.
pub(crate) const C_ALU: usize = 0;
pub(crate) const C_SFT: usize = 1;
pub(crate) const C_BR: usize = 2;
pub(crate) const C_CTL: usize = 3;

/// Minimum op count for a block with no backward terminator to be worth
/// *entering* a replay at (see [`Block::worth`]): below this, per-call
/// cursor setup and stat merging cost about as much as interpreting the
/// block. Backward-branching blocks are always worth it regardless of
/// size — the chain replays whole loop iterations per call.
const WORTH_MIN_OPS: usize = 3;

/// One decoded basic block: the pure-local straight line starting at
/// `start`, terminator (branch/jump, possibly fused) inclusive. Blocks
/// clip *before* the first non-local instruction; a block entered by a
/// jump into the middle of another block's range is simply decoded again
/// from its own entry pc (blocks are immutable and overlap freely).
#[derive(Debug)]
pub struct Block {
    start: u32,
    ops: Vec<DecodedOp>,
    /// Is *entering* a replay at this block expected to pay for the
    /// cursor/env setup? True for blocks with enough ops or a backward
    /// terminator (a loop back edge — the chain replays whole
    /// iterations). Entry-only heuristic: once a chain is running,
    /// not-worth blocks still replay (the marginal cost is tiny), and
    /// skipping entry is always sound because replay is a pure optional
    /// fast-forward over the interpreted oracle.
    worth: bool,
}

#[derive(Debug)]
enum Slot {
    Unvisited,
    /// The instruction at this pc is not pure-local (or not decodable):
    /// cached negative result.
    NotLocal,
    Decoded(Block),
}

/// Decode-time counters (execution-time counters travel per-call in
/// [`Cursor`] and are merged into `HostProfile` by the engines).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Basic blocks decoded (including re-decodes after invalidation).
    pub blocks_decoded: u64,
    /// Fused superinstructions created at decode time.
    pub fused_pairs: u64,
    /// `invalidate_all` calls that discarded at least one decoded block.
    pub invalidations: u64,
}

/// The per-simulator decode cache: one slot per text pc.
#[derive(Debug)]
pub struct DecodeCache {
    slots: Vec<Slot>,
    /// Decode-time counters.
    pub stats: DecodeStats,
}

/// Window-constant burst break conditions, mirroring the interpreted
/// burst loops exactly (`CycleSim::master_burst` / `tcu_burst` /
/// `parallel::burst_local`). A field is `None` when the corresponding
/// oracle loop has no such check (e.g. `checkpoint_at` outside the
/// master's quiescent case, `max_instrs` under the parallel offload
/// headroom guard).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ReplayEnv {
    pub cp: Time,
    pub next_sample_at: Option<Time>,
    pub max_cycles: Option<u64>,
    pub max_instrs: Option<u64>,
    pub checkpoint_any_at: Option<u64>,
    pub checkpoint_at: Option<u64>,
    pub cycles_base: u64,
    pub period_changed_at: Time,
    /// `stats.instructions` at replay entry; the oracle's instruction
    /// count at constituent `i` is `instrs_base + i`.
    pub instrs_base: u64,
}

impl ReplayEnv {
    /// An environment for functional mode: no timing, only the
    /// instruction limit (`executed >= limit` before each instruction).
    pub(crate) fn functional(limit: u64, executed: u64) -> Self {
        ReplayEnv {
            cp: 1,
            next_sample_at: None,
            max_cycles: None,
            max_instrs: Some(limit),
            checkpoint_any_at: None,
            checkpoint_at: None,
            cycles_base: 0,
            period_changed_at: 0,
            instrs_base: executed,
        }
    }

    /// `CycleSim::cycles_at` from window-constant state.
    #[inline]
    fn cycles_at(&self, t: Time) -> u64 {
        self.cycles_base + (t - self.period_changed_at) / self.cp
    }

    /// Would the oracle burst loop break before executing the next
    /// instruction, given the burst length, completion time, and
    /// instruction count it would check? Condition-for-condition the
    /// `master_burst`/`tcu_burst`/`burst_local` loop heads.
    #[inline]
    fn slot_blocked(&self, len: u64, done: Time, instrs: u64) -> bool {
        len >= BURST_CAP
            || self.next_sample_at.is_some_and(|s| done > s)
            || self.max_cycles.is_some_and(|l| self.cycles_at(done) > l)
            || self.max_instrs.is_some_and(|l| instrs >= l)
            || self
                .checkpoint_any_at
                .is_some_and(|c| self.cycles_at(done) >= c)
            || self
                .checkpoint_at
                .is_some_and(|c| self.cycles_at(done) >= c)
    }

    /// Earliest absolute time at which `cycles_at(t) >= c`, saturating.
    fn time_reaching_cycles(&self, c: u64) -> Time {
        match c.checked_sub(self.cycles_base) {
            None | Some(0) => 0,
            Some(d) => self
                .period_changed_at
                .saturating_add(d.saturating_mul(self.cp)),
        }
    }

    /// A conservative number of constituent instructions guaranteed to
    /// pass `slot_blocked` without re-checking, assuming the worst-case
    /// per-constituent cost of 2 clock periods (a taken branch; every
    /// other constituent costs 1). Underestimating is always safe — the
    /// per-op checked path covers the remainder — so every bound rounds
    /// down.
    fn free_slots(&self, len: u64, done: Time, instrs: u64) -> u64 {
        let mut k = BURST_CAP.saturating_sub(len);
        let step = 2 * self.cp;
        if let Some(s) = self.next_sample_at {
            // Safe while the pre-op check sees `done <= s`.
            k = k.min(s.saturating_sub(done) / step);
        }
        if let Some(l) = self.max_instrs {
            k = k.min(l.saturating_sub(instrs));
        }
        let mut t_break = Time::MAX;
        if let Some(l) = self.max_cycles {
            // Breaks when cycles_at(done) > l, i.e. reaches l + 1.
            t_break = t_break.min(self.time_reaching_cycles(l.saturating_add(1)));
        }
        if let Some(c) = self.checkpoint_any_at {
            t_break = t_break.min(self.time_reaching_cycles(c));
        }
        if let Some(c) = self.checkpoint_at {
            t_break = t_break.min(self.time_reaching_cycles(c));
        }
        if t_break != Time::MAX {
            // Safe while the pre-op check sees `done < t_break`.
            k = k.min(t_break.saturating_sub(done).saturating_sub(1) / step);
        }
        k
    }
}

/// Why [`DecodeCache::replay_chain`] stopped. In every case `ctx.pc`
/// already points at the next instruction for the interpreted loop.
enum ChainStop {
    /// A break condition would fire before the next constituent (or the
    /// chain bailed mid-fused-pair, or fell off a block onto a non-local
    /// instruction): the interpreted loop re-checks and takes over.
    Done,
    /// The chain reached a pc whose cache slot is `Unvisited`: the
    /// decode-on-miss driver may decode it and continue.
    Miss,
}

/// Per-replay-call accumulator. `len`/`done` continue the caller's burst
/// bookkeeping; the rest are deltas the caller merges into `Stats` /
/// `HostProfile` after the call.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Cursor {
    /// Burst length so far (constituent instructions, incl. pre-replay).
    pub len: u64,
    /// Aggregate completion time so far.
    pub done: Time,
    /// Constituent instructions executed by this replay call.
    pub executed: u64,
    /// Executed constituents by cost class (`[Alu, Sft, Br, Ctl]`).
    pub counts: [u64; 4],
    /// Fused superinstructions executed whole.
    pub fused: u64,
    /// Blocks replayed.
    pub replays: u64,
    /// Blocks decoded during this call.
    pub decoded: u64,
}

impl Cursor {
    pub(crate) fn new(len: u64, done: Time) -> Self {
        Cursor {
            len,
            done,
            executed: 0,
            counts: [0; 4],
            fused: 0,
            replays: 0,
            decoded: 0,
        }
    }
}

#[inline]
fn eval_cond(ctx: &ThreadCtx, cond: BrCond, rs: Reg, rt: Reg) -> bool {
    let a = ctx.regs.get(rs);
    match cond {
        BrCond::Eq => a == ctx.regs.get(rt),
        BrCond::Ne => a != ctx.regs.get(rt),
        BrCond::Lez => (a as i32) <= 0,
        BrCond::Gtz => (a as i32) > 0,
        BrCond::Ltz => (a as i32) < 0,
        BrCond::Gez => (a as i32) >= 0,
    }
}

#[inline]
fn exec_bin(ctx: &mut ThreadCtx, op: BinAlu, rd: Reg, rs: Reg, rt: Reg) {
    let r = &mut ctx.regs;
    let a = r.get(rs);
    let b = r.get(rt);
    let v = match op {
        BinAlu::Add => a.wrapping_add(b),
        BinAlu::Sub => a.wrapping_sub(b),
        BinAlu::And => a & b,
        BinAlu::Or => a | b,
        BinAlu::Xor => a ^ b,
        BinAlu::Nor => !(a | b),
        BinAlu::Slt => ((a as i32) < (b as i32)) as u32,
        BinAlu::Sltu => (a < b) as u32,
    };
    r.set(rd, v);
}

#[inline]
fn exec_cmp(ctx: &mut ThreadCtx, cmp: CmpOp) {
    match cmp {
        CmpOp::Reg { op, rd, rs, rt } => exec_bin(ctx, op, rd, rs, rt),
        CmpOp::Imm { op, rt, rs, imm } => {
            let r = &mut ctx.regs;
            let a = r.get(rs);
            let v = match op {
                ImmAlu::Slti => ((a as i32) < (imm as i32)) as u32,
                _ => (a < imm) as u32, // Sltiu — nothing else occurs here
            };
            r.set(rt, v);
        }
    }
}

impl DecodeCache {
    /// Fast-forward `ctx` through already-decoded blocks, chaining across
    /// taken branches, until a break condition, a mid-pair bail, a
    /// non-local pc, or an un-decoded cache slot stops it. This is the
    /// simulator's hottest loop: the burst books accumulate in locals
    /// (written back to `cur` once), and the conservative `free`-slot
    /// budget — every constituent pessimized to 2 clock periods —
    /// survives across chained blocks, re-derived from actual state only
    /// when exhausted, so the per-constituent break checks run only near
    /// a boundary.
    fn replay_chain(&self, ctx: &mut ThreadCtx, env: &ReplayEnv, cur: &mut Cursor) -> ChainStop {
        let cp = env.cp;
        let mut done = cur.done;
        let mut len = cur.len;
        let mut executed = cur.executed;
        let mut counts = cur.counts;
        let mut fused = cur.fused;
        let mut replays = cur.replays;
        let mut free = 0u64;
        let stop = 'chain: loop {
            // A positive leftover budget *is* a proof the slot is open.
            if free == 0 && env.slot_blocked(len, done, env.instrs_base + executed) {
                break 'chain ChainStop::Done;
            }
            let block = match self.slots.get(ctx.pc as usize) {
                Some(Slot::Decoded(b)) => b,
                _ => break 'chain ChainStop::Miss,
            };
            replays += 1;
            let mut pc = block.start;
            for op in &block.ops {
                let n = op.constituents();
                if free >= n {
                    free -= n;
                } else {
                    // The worst-case budget pessimizes every constituent to 2
                    // clock periods, so a fresh derivation from the *actual*
                    // current state may hand back more slots before the
                    // per-constituent checks have to take over.
                    free = env.free_slots(len, done, env.instrs_base + executed);
                    if free >= n {
                        free -= n;
                    } else {
                        free = 0;
                        if env.slot_blocked(len, done, env.instrs_base + executed) {
                            ctx.pc = pc;
                            break 'chain ChainStop::Done;
                        }
                        if n == 2
                            && env.slot_blocked(len + 1, done + cp, env.instrs_base + executed + 1)
                        {
                            // Execute the first constituent alone (always a
                            // 1-cycle ALU op) and hand the pair's tail back
                            // to the interpreter — the exact point the
                            // oracle would stop.
                            match *op {
                                DecodedOp::LiBin { li_rt, imm, .. } => ctx.regs.set_i(li_rt, imm),
                                DecodedOp::CmpBr { cmp, .. } => exec_cmp(ctx, cmp),
                                _ => unreachable!("only fused ops have two constituents"),
                            }
                            counts[C_ALU] += 1;
                            len += 1;
                            executed += 1;
                            done += cp;
                            ctx.pc = pc + 1;
                            break 'chain ChainStop::Done;
                        }
                    }
                }
                match *op {
                    DecodedOp::Bin { op, rd, rs, rt } => {
                        exec_bin(ctx, op, rd, rs, rt);
                        counts[C_ALU] += 1;
                        done += cp;
                    }
                    DecodedOp::Imm { op, rt, rs, imm } => {
                        let r = &mut ctx.regs;
                        let a = r.get(rs);
                        let v = match op {
                            ImmAlu::Addi => a.wrapping_add(imm),
                            ImmAlu::Andi => a & imm,
                            ImmAlu::Ori => a | imm,
                            ImmAlu::Xori => a ^ imm,
                            ImmAlu::Slti => ((a as i32) < (imm as i32)) as u32,
                            ImmAlu::Sltiu => (a < imm) as u32,
                        };
                        r.set(rt, v);
                        counts[C_ALU] += 1;
                        done += cp;
                    }
                    DecodedOp::Li { rt, imm } => {
                        ctx.regs.set_i(rt, imm);
                        counts[C_ALU] += 1;
                        done += cp;
                    }
                    DecodedOp::Lui { rt, upper } => {
                        ctx.regs.set(rt, upper);
                        counts[C_ALU] += 1;
                        done += cp;
                    }
                    DecodedOp::Move { rd, rs } => {
                        let v = ctx.regs.get(rs);
                        ctx.regs.set(rd, v);
                        counts[C_ALU] += 1;
                        done += cp;
                    }
                    DecodedOp::ShImm { op, rd, rt, sh } => {
                        let r = &mut ctx.regs;
                        match op {
                            ShKind::Sll => {
                                let v = r.get(rt) << sh;
                                r.set(rd, v);
                            }
                            ShKind::Srl => {
                                let v = r.get(rt) >> sh;
                                r.set(rd, v);
                            }
                            ShKind::Sra => {
                                let v = r.get_i(rt) >> sh;
                                r.set_i(rd, v);
                            }
                        }
                        counts[C_SFT] += 1;
                        done += cp;
                    }
                    DecodedOp::ShVar { op, rd, rt, rs } => {
                        let r = &mut ctx.regs;
                        let sh = r.get(rs) & 31;
                        match op {
                            ShKind::Sll => {
                                let v = r.get(rt) << sh;
                                r.set(rd, v);
                            }
                            ShKind::Srl => {
                                let v = r.get(rt) >> sh;
                                r.set(rd, v);
                            }
                            ShKind::Sra => {
                                let v = r.get_i(rt) >> sh;
                                r.set_i(rd, v);
                            }
                        }
                        counts[C_SFT] += 1;
                        done += cp;
                    }
                    DecodedOp::Nop => {
                        counts[C_CTL] += 1;
                        done += cp;
                    }
                    DecodedOp::Br {
                        cond,
                        rs,
                        rt,
                        target,
                    } => {
                        let taken = eval_cond(ctx, cond, rs, rt);
                        ctx.pc = if taken { target } else { pc + 1 };
                        counts[C_BR] += 1;
                        done += if taken { 2 * cp } else { cp };
                        len += 1;
                        executed += 1;
                        continue 'chain;
                    }
                    DecodedOp::J { target } => {
                        ctx.pc = target;
                        counts[C_BR] += 1;
                        done += 2 * cp;
                        len += 1;
                        executed += 1;
                        continue 'chain;
                    }
                    DecodedOp::Jal { target, link } => {
                        ctx.regs.set(Reg::Ra, link);
                        ctx.pc = target;
                        counts[C_BR] += 1;
                        done += 2 * cp;
                        len += 1;
                        executed += 1;
                        continue 'chain;
                    }
                    DecodedOp::Jr { rs } => {
                        ctx.pc = ctx.regs.get(rs);
                        counts[C_BR] += 1;
                        done += 2 * cp;
                        len += 1;
                        executed += 1;
                        continue 'chain;
                    }
                    DecodedOp::Jalr { rd, rs, link } => {
                        // Destination read *before* the link write (rd == rs).
                        let dest = ctx.regs.get(rs);
                        ctx.regs.set(rd, link);
                        ctx.pc = dest;
                        counts[C_BR] += 1;
                        done += 2 * cp;
                        len += 1;
                        executed += 1;
                        continue 'chain;
                    }
                    DecodedOp::LiBin {
                        li_rt,
                        imm,
                        op,
                        rd,
                        rs,
                        rt,
                    } => {
                        ctx.regs.set_i(li_rt, imm);
                        exec_bin(ctx, op, rd, rs, rt);
                        counts[C_ALU] += 2;
                        done += 2 * cp;
                        len += 2;
                        executed += 2;
                        fused += 1;
                        pc += 2;
                        continue;
                    }
                    DecodedOp::CmpBr {
                        cmp,
                        cond,
                        brs,
                        brt,
                        target,
                    } => {
                        exec_cmp(ctx, cmp);
                        let taken = eval_cond(ctx, cond, brs, brt);
                        ctx.pc = if taken { target } else { pc + 2 };
                        counts[C_ALU] += 1;
                        counts[C_BR] += 1;
                        done += cp + if taken { 2 * cp } else { cp };
                        len += 2;
                        executed += 2;
                        fused += 1;
                        continue 'chain;
                    }
                }
                len += 1;
                executed += 1;
                pc += 1;
            }
            // Fell past the last decoded op: the next instruction is
            // non-local.
            ctx.pc = pc;
            break 'chain ChainStop::Done;
        };
        cur.done = done;
        cur.len = len;
        cur.executed = executed;
        cur.counts = counts;
        cur.fused = fused;
        cur.replays = replays;
        stop
    }
}

impl DecodeCache {
    /// An empty cache for a program of `text_len` instructions.
    pub fn new(text_len: usize) -> Self {
        DecodeCache {
            slots: (0..text_len).map(|_| Slot::Unvisited).collect(),
            stats: DecodeStats::default(),
        }
    }

    /// Discard every decoded block (tracer/filter activation, checkpoint
    /// restore). Blocks rebuild deterministically on demand — the cache
    /// is a pure function of the immutable text — so this is hygiene and
    /// bookkeeping, never a correctness event.
    pub fn invalidate_all(&mut self) {
        let had_any = self.slots.iter().any(|s| !matches!(s, Slot::Unvisited));
        for s in &mut self.slots {
            *s = Slot::Unvisited;
        }
        if had_any {
            self.stats.invalidations += 1;
        }
    }

    fn decode_block(&mut self, exe: &Executable, pc: u32) {
        let mut ops: Vec<DecodedOp> = Vec::new();
        let mut fused_here = 0u64;
        let mut cur = pc;
        loop {
            let Some(op) = exe.instr(cur).and_then(|i| decode_instr(i, cur)) else {
                break;
            };
            let fused = ops.last().and_then(|prev| fuse(prev, &op));
            let op = match fused {
                Some(f) => {
                    ops.pop();
                    fused_here += 1;
                    f
                }
                None => op,
            };
            let terminator = op.is_terminator();
            ops.push(op);
            if terminator {
                break;
            }
            cur += 1;
        }
        self.slots[pc as usize] = if ops.is_empty() {
            Slot::NotLocal
        } else {
            self.stats.blocks_decoded += 1;
            self.stats.fused_pairs += fused_here;
            // A lone backward jump (`[j]`) is excluded: unless the rest
            // of the loop is also pure-local (in which case some other
            // block carries the entry), its chain ends after the jump
            // plus whatever the head block holds — too short to pay.
            let worth = ops.len() >= WORTH_MIN_OPS
                || (ops.len() >= 2
                    && matches!(
                        ops.last(),
                        Some(
                            DecodedOp::Br { target, .. }
                                | DecodedOp::J { target }
                                | DecodedOp::Jal { target, .. }
                                | DecodedOp::CmpBr { target, .. }
                        ) if *target <= pc
                    ));
            Slot::Decoded(Block {
                start: pc,
                ops,
                worth,
            })
        };
    }

    /// Read-only lookup, never decodes.
    #[cfg(test)]
    fn lookup(&self, pc: u32) -> Option<&Block> {
        match self.slots.get(pc as usize) {
            Some(Slot::Decoded(b)) => Some(b),
            _ => None,
        }
    }

    /// Pre-decode the block at `pc` and (transitively) its static
    /// successors, up to `budget` blocks — the coordinator-side warm-up
    /// that lets read-only worker replays run whole loops. Returns once
    /// the frontier is exhausted or the budget spent.
    pub(crate) fn warm(&mut self, exe: &Executable, pc: u32, mut budget: u32) {
        let mut frontier = vec![pc];
        while let Some(p) = frontier.pop() {
            if budget == 0 {
                return;
            }
            if (p as usize) < self.slots.len() && matches!(self.slots[p as usize], Slot::Unvisited)
            {
                budget -= 1;
                self.decode_block(exe, p);
                if let Slot::Decoded(b) = &self.slots[p as usize] {
                    let end = b.start + b.ops.iter().map(|o| o.constituents() as u32).sum::<u32>();
                    match *b.ops.last().expect("decoded blocks are non-empty") {
                        DecodedOp::Br { target, .. } | DecodedOp::CmpBr { target, .. } => {
                            frontier.push(target);
                            frontier.push(end);
                        }
                        DecodedOp::J { target } | DecodedOp::Jal { target, .. } => {
                            frontier.push(target)
                        }
                        // Dynamic jump targets are unknown statically;
                        // fall-through past a non-terminator end is
                        // non-local by construction.
                        _ => {}
                    }
                }
            }
        }
    }

    /// Is *entering* a replay at `pc` worthwhile? `false` for a
    /// cached-negative (`NotLocal`) or out-of-range slot, and for decoded
    /// blocks below the [`Block::worth`] entry threshold — the cheap
    /// pre-check that keeps known-miss and tiny straight-line pcs at
    /// interpreter cost. `Unvisited` is replayable (decode-on-miss may
    /// turn it into a worthwhile block).
    #[inline]
    pub(crate) fn replayable(&self, pc: u32) -> bool {
        match self.slots.get(pc as usize) {
            Some(Slot::Unvisited) => true,
            Some(Slot::Decoded(b)) => b.worth,
            None | Some(Slot::NotLocal) => false,
        }
    }

    /// [`Self::replayable`] for the read-only worker drivers, which never
    /// decode: only an already-`Decoded`, worthwhile slot can pay off.
    #[inline]
    pub(crate) fn replayable_shared(&self, pc: u32) -> bool {
        matches!(self.slots.get(pc as usize), Some(Slot::Decoded(b)) if b.worth)
    }

    /// Fast-forward `ctx` through decoded blocks until a break condition,
    /// a non-local pc, or a mid-pair bail stops it — the sequential
    /// (decode-on-miss) driver: a chain stopping on an `Unvisited` slot
    /// decodes it and chains on.
    pub(crate) fn replay(
        &mut self,
        exe: &Executable,
        ctx: &mut ThreadCtx,
        env: &ReplayEnv,
        cur: &mut Cursor,
    ) {
        let decoded0 = self.stats.blocks_decoded;
        while let ChainStop::Miss = self.replay_chain(ctx, env, cur) {
            let pc = ctx.pc as usize;
            if pc >= self.slots.len() || !matches!(self.slots[pc], Slot::Unvisited) {
                break;
            }
            self.decode_block(exe, ctx.pc);
            if !matches!(self.slots[pc], Slot::Decoded(_)) {
                break;
            }
        }
        cur.decoded += self.stats.blocks_decoded - decoded0;
    }

    /// [`Self::replay`] without decode-on-miss — the worker-thread driver
    /// over a shared read-only cache: an un-decoded pc simply ends the
    /// fast-forward and the interpreted `burst_local` loop takes over.
    pub(crate) fn replay_shared(&self, ctx: &mut ThreadCtx, env: &ReplayEnv, cur: &mut Cursor) {
        let _ = self.replay_chain(ctx, env, cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec;
    use xmt_isa::{AsmProgram, Instr, MemoryMap, Target};

    /// A program covering every decoded op kind, both fusion pairs, a
    /// taken/untaken branch mix, and a jump chain — mirrored after
    /// `exec`'s `issue_local_matches_issue_on_the_burstable_subset`.
    fn mixed_program() -> Executable {
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 7,
        }); // fuses with next
        p.push(Instr::Add {
            rd: Reg::T1,
            rs: Reg::T0,
            rt: Reg::T0,
        });
        p.push(Instr::Li {
            rt: Reg::T2,
            imm: -3,
        });
        p.push(Instr::Lui {
            rt: Reg::T3,
            imm: 0x1234,
        });
        p.push(Instr::Sub {
            rd: Reg::T4,
            rs: Reg::T1,
            rt: Reg::T2,
        });
        p.push(Instr::And {
            rd: Reg::T5,
            rs: Reg::T4,
            rt: Reg::T3,
        });
        p.push(Instr::Or {
            rd: Reg::T5,
            rs: Reg::T5,
            rt: Reg::T0,
        });
        p.push(Instr::Xor {
            rd: Reg::T6,
            rs: Reg::T5,
            rt: Reg::T1,
        });
        p.push(Instr::Nor {
            rd: Reg::T7,
            rs: Reg::T6,
            rt: Reg::T2,
        });
        p.push(Instr::Slt {
            rd: Reg::S0,
            rs: Reg::T2,
            rt: Reg::T0,
        });
        p.push(Instr::Sltu {
            rd: Reg::S1,
            rs: Reg::T2,
            rt: Reg::T0,
        });
        p.push(Instr::Addi {
            rt: Reg::S2,
            rs: Reg::T0,
            imm: -100,
        });
        p.push(Instr::Andi {
            rt: Reg::S3,
            rs: Reg::T7,
            imm: 0xff,
        });
        p.push(Instr::Ori {
            rt: Reg::S3,
            rs: Reg::S3,
            imm: 0x100,
        });
        p.push(Instr::Xori {
            rt: Reg::S4,
            rs: Reg::S3,
            imm: 0xf0f0,
        });
        p.push(Instr::Slti {
            rt: Reg::S5,
            rs: Reg::T2,
            imm: 5,
        });
        p.push(Instr::Sltiu {
            rt: Reg::S6,
            rs: Reg::T2,
            imm: 5,
        });
        p.push(Instr::Move {
            rd: Reg::S7,
            rs: Reg::T4,
        });
        p.push(Instr::Sll {
            rd: Reg::A0,
            rt: Reg::T0,
            sh: 3,
        });
        p.push(Instr::Srl {
            rd: Reg::A1,
            rt: Reg::T2,
            sh: 2,
        });
        p.push(Instr::Sra {
            rd: Reg::A2,
            rt: Reg::T2,
            sh: 2,
        });
        p.push(Instr::Li {
            rt: Reg::A3,
            imm: 33,
        }); // shift amount masks to 1
        p.push(Instr::Sllv {
            rd: Reg::T8,
            rt: Reg::T0,
            rs: Reg::A3,
        });
        p.push(Instr::Srlv {
            rd: Reg::T9,
            rt: Reg::T2,
            rs: Reg::A3,
        });
        p.push(Instr::Srav {
            rd: Reg::V0,
            rt: Reg::T2,
            rs: Reg::A3,
        });
        p.push(Instr::Nop);
        // compare+branch fusion, untaken then taken
        p.push(Instr::Slt {
            rd: Reg::V1,
            rs: Reg::T0,
            rt: Reg::T2,
        }); // 7 < -3: 0
        p.push(Instr::Bne {
            rs: Reg::V1,
            rt: Reg::Zero,
            target: Target::label("skip"),
        });
        p.push(Instr::Slti {
            rt: Reg::V1,
            rs: Reg::T2,
            imm: 0,
        }); // -3 < 0: 1
        p.push(Instr::Bne {
            rs: Reg::V1,
            rt: Reg::Zero,
            target: Target::label("jump_chain"),
        });
        p.label("skip");
        p.push(Instr::Nop);
        p.label("jump_chain");
        p.push(Instr::Jal {
            target: Target::label("sub"),
        });
        p.push(Instr::Beq {
            rs: Reg::T0,
            rt: Reg::T0,
            target: Target::label("out"),
        });
        p.label("sub");
        p.push(Instr::Jr { rs: Reg::Ra });
        p.label("out");
        p.push(Instr::Halt);
        p.link(MemoryMap::new()).unwrap()
    }

    fn unlimited_env() -> ReplayEnv {
        ReplayEnv {
            cp: 500,
            next_sample_at: None,
            max_cycles: None,
            max_instrs: None,
            checkpoint_any_at: None,
            checkpoint_at: None,
            cycles_base: 0,
            period_changed_at: 0,
            instrs_base: 0,
        }
    }

    /// Replay must leave the context (registers, pc) and the cost/count
    /// books in exactly the state the interpreted `issue_local` walk
    /// produces, fusion and all.
    #[test]
    fn replay_matches_interpreted_walk_on_the_mixed_program() {
        let exe = mixed_program();
        let cp: Time = 500;

        // Oracle: per-instruction interpreted walk.
        let mut oracle = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        let mut o_done: Time = 0;
        let mut o_counts = [0u64; 4];
        let mut o_instrs = 0u64;
        while exec::peek_burstable(&exe, oracle.pc) {
            let cost = exec::issue_local(&exe, &mut oracle).unwrap();
            use crate::exec::CostClass as C;
            let (slot, cycles) = match cost {
                C::Alu => (C_ALU, 1),
                C::Sft => (C_SFT, 1),
                C::Branch { taken } => (C_BR, if taken { 2 } else { 1 }),
                _ => (C_CTL, 1),
            };
            o_counts[slot] += 1;
            o_done += cycles * cp;
            o_instrs += 1;
        }

        // Replayed walk.
        let mut cache = DecodeCache::new(exe.len());
        let mut ctx = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        let env = unlimited_env();
        let mut cur = Cursor::new(0, 0);
        cache.replay(&exe, &mut ctx, &env, &mut cur);

        assert_eq!(ctx.pc, oracle.pc, "stops at the same (non-local) pc");
        assert_eq!(ctx.regs, oracle.regs, "identical register file");
        assert_eq!(cur.executed, o_instrs);
        assert_eq!(cur.counts, o_counts);
        assert_eq!(cur.done, o_done, "identical aggregate latency");
        assert!(cur.fused >= 2, "both fusion kinds executed");
        assert!(cache.stats.fused_pairs >= 2);
        assert!(cache.stats.blocks_decoded > 0);
    }

    /// Replaying the same blocks twice must not re-decode, and must
    /// produce the same result from the same entry state.
    #[test]
    fn second_replay_hits_the_cache() {
        let exe = mixed_program();
        let mut cache = DecodeCache::new(exe.len());
        let env = unlimited_env();

        let mut a = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        let mut ca = Cursor::new(0, 0);
        cache.replay(&exe, &mut a, &env, &mut ca);
        let decoded_once = cache.stats.blocks_decoded;
        assert!(ca.decoded > 0);

        let mut b = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        let mut cb = Cursor::new(0, 0);
        cache.replay(&exe, &mut b, &env, &mut cb);
        assert_eq!(cache.stats.blocks_decoded, decoded_once, "no re-decode");
        assert_eq!(cb.decoded, 0);
        assert_eq!(a.regs, b.regs);
        assert_eq!(
            (ca.executed, ca.counts, ca.done),
            (cb.executed, cb.counts, cb.done)
        );
    }

    /// Every break condition must stop replay at exactly the constituent
    /// the interpreted loop would refuse to execute.
    #[test]
    fn limits_clip_replay_exactly() {
        let exe = mixed_program();
        let cp: Time = 500;
        for limit in [0u64, 1, 2, 3, 5, 9, 20] {
            // Instruction limit.
            let mut cache = DecodeCache::new(exe.len());
            let mut ctx = ThreadCtx {
                pc: exe.entry,
                ..Default::default()
            };
            let env = ReplayEnv {
                max_instrs: Some(limit),
                ..unlimited_env()
            };
            let mut cur = Cursor::new(0, 0);
            cache.replay(&exe, &mut ctx, &env, &mut cur);
            assert_eq!(cur.executed, limit.min(35), "max_instrs={limit}");

            // Oracle state after `limit` interpreted steps.
            let mut oracle = ThreadCtx {
                pc: exe.entry,
                ..Default::default()
            };
            for _ in 0..cur.executed {
                exec::issue_local(&exe, &mut oracle).unwrap();
            }
            assert_eq!(ctx.regs, oracle.regs, "max_instrs={limit}");
            assert_eq!(ctx.pc, oracle.pc, "max_instrs={limit}");

            // Sample boundary: the oracle executes while `done <= s`
            // (checked before each op) and breaks once `done > s`.
            let s = limit * cp;
            let mut cache = DecodeCache::new(exe.len());
            let mut ctx = ThreadCtx {
                pc: exe.entry,
                ..Default::default()
            };
            let env = ReplayEnv {
                next_sample_at: Some(s),
                ..unlimited_env()
            };
            let mut cur = Cursor::new(0, 0);
            cache.replay(&exe, &mut ctx, &env, &mut cur);

            let mut oracle = ThreadCtx {
                pc: exe.entry,
                ..Default::default()
            };
            let mut o_done: Time = 0;
            let mut o_instrs = 0u64;
            while o_done <= s && exec::peek_burstable(&exe, oracle.pc) {
                let cost = exec::issue_local(&exe, &mut oracle).unwrap();
                let cycles = match cost {
                    exec::CostClass::Branch { taken: true } => 2,
                    _ => 1,
                };
                o_done += cycles * cp;
                o_instrs += 1;
            }
            assert_eq!(cur.executed, o_instrs, "sample at {limit} cycles");
            assert_eq!(cur.done, o_done, "sample at {limit} cycles");
            assert_eq!(ctx.regs, oracle.regs, "sample at {limit} cycles");
            assert_eq!(ctx.pc, oracle.pc, "sample at {limit} cycles");
        }
    }

    #[test]
    fn invalidate_all_discards_and_counts() {
        let exe = mixed_program();
        let mut cache = DecodeCache::new(exe.len());
        // Invalidating an empty cache is not an invalidation event.
        cache.invalidate_all();
        assert_eq!(cache.stats.invalidations, 0);

        let mut ctx = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        let env = unlimited_env();
        let mut cur = Cursor::new(0, 0);
        cache.replay(&exe, &mut ctx, &env, &mut cur);
        let decoded = cache.stats.blocks_decoded;
        assert!(decoded > 0);

        cache.invalidate_all();
        assert_eq!(cache.stats.invalidations, 1);
        assert!(cache.lookup(exe.entry).is_none(), "blocks discarded");

        // Re-decode on demand, deterministically.
        let mut ctx2 = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        let mut cur2 = Cursor::new(0, 0);
        cache.replay(&exe, &mut ctx2, &env, &mut cur2);
        assert_eq!(cache.stats.blocks_decoded, 2 * decoded);
        assert_eq!(ctx.regs, ctx2.regs);
    }

    #[test]
    fn warm_predecodes_loop_blocks_for_readonly_replay() {
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::T1,
            imm: 10,
        });
        p.label("loop");
        p.push(Instr::Addi {
            rt: Reg::T0,
            rs: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Slt {
            rd: Reg::T2,
            rs: Reg::T0,
            rt: Reg::T1,
        });
        p.push(Instr::Bne {
            rs: Reg::T2,
            rt: Reg::Zero,
            target: Target::label("loop"),
        });
        p.push(Instr::Halt);
        let exe = p.link(MemoryMap::new()).unwrap();

        let mut cache = DecodeCache::new(exe.len());
        cache.warm(&exe, exe.entry, 16);
        assert!(cache.stats.blocks_decoded >= 2, "entry + loop body");

        // A read-only replay from the warmed cache runs the whole loop.
        let mut ctx = ThreadCtx {
            pc: exe.entry,
            ..Default::default()
        };
        let env = unlimited_env();
        let mut cur = Cursor::new(0, 0);
        cache.replay_shared(&mut ctx, &env, &mut cur);
        assert_eq!(ctx.regs.get(Reg::T0), 10, "loop ran to completion");
        assert!(cur.replays >= 10);
        assert!(cur.fused >= 10, "compare+branch fused in the loop");
    }
}
