//! Cross-engine differential execution (the fuzzer's entry point).
//!
//! The toolchain has many ways to execute one program: fast functional
//! mode plus the cycle-model configurations spanned by [`IssueModel`] ×
//! [`IcnModel`] × [`EngineMode`] × [`DecodeMode`] × [`MemModel`]. Each
//! batched path (`Burst`, `Express`, `Macro`) was introduced with a
//! per-event oracle (`PerInstr`, `PerHop`, `PerRequest`) and a
//! bit-identity property suite; this module packages that discipline as
//! a single entry point: [`run_all_engines`] executes one [`Executable`]
//! on every [`CYCLE_ENGINE_MATRIX`] row and
//! [`AllEngines::check_cycle_identical`] asserts all cycle
//! configurations agree on everything architecturally observable —
//! cycles, simulated time, instruction count, the full statistics record
//! and the final machine state. Only the host-side event count may
//! differ (eliding events is the batched paths' point).
//!
//! Functional mode serializes parallel sections, so it agrees with the
//! cycle model only on *order-free* observables; which globals are
//! order-free is program knowledge, so the caller states it via
//! [`FunctionalCheck`] and [`AllEngines::check_functional_agrees`].

use crate::config::{DecodeMode, EngineMode, IcnModel, IssueModel, MemModel, XmtConfig};
use crate::cycle::{CycleSim, SimError};
use crate::functional::{FuncError, FunctionalSim};
use crate::machine::Machine;
use xmt_harness::ToJson;
use xmt_isa::Executable;

/// The twelve cycle-model configurations every program is run through.
///
/// Rows 0–3: the sequential engine over both batched defaults and both
/// per-event oracles, plus the two mixed pairings (a tie-break bug in one
/// elision layer that happens to cancel against the other would hide from
/// the pure pairings). Rows 4–7: the sharded parallel engine
/// ([`EngineMode::Parallel`]) at 2 and 4 worker threads on the batched
/// default, plus one per-instruction row (exercising the sharded queues
/// with phase A disabled) and one per-hop row (cross-shard interconnect
/// traffic) — each must be bit-identical to its sequential twin, which
/// rows 0–2 put in the comparison set. Rows 0–7 pin the decode cache
/// *off*, so the interpreted issue path stays the oracle; rows 8–9 turn
/// it on — sequential burst replay and worker-side shared-cache replay —
/// and must be bit-identical to everything above.
///
/// The sixth column picks the memory-system model. The per-event oracle
/// rows (2, 3, 6, 7) also pin [`MemModel::PerRequest`], so the matrix
/// keeps one fully event-per-event configuration per engine; the batched
/// rows run the [`MemModel::Macro`] default. Rows 10–11 are the pure
/// mem-model pairings — identical to rows 0 and 4 except for the memory
/// model — so a macro-drain tie-break bug cannot hide behind a
/// compensating issue- or ICN-layer difference.
pub const CYCLE_ENGINE_MATRIX: [(IssueModel, IcnModel, EngineMode, u32, DecodeMode, MemModel); 12] = [
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Sequential,
        0,
        DecodeMode::Off,
        MemModel::Macro,
    ),
    (
        IssueModel::Burst,
        IcnModel::PerHop,
        EngineMode::Sequential,
        0,
        DecodeMode::Off,
        MemModel::Macro,
    ),
    (
        IssueModel::PerInstr,
        IcnModel::Express,
        EngineMode::Sequential,
        0,
        DecodeMode::Off,
        MemModel::PerRequest,
    ),
    (
        IssueModel::PerInstr,
        IcnModel::PerHop,
        EngineMode::Sequential,
        0,
        DecodeMode::Off,
        MemModel::PerRequest,
    ),
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Parallel,
        2,
        DecodeMode::Off,
        MemModel::Macro,
    ),
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Parallel,
        4,
        DecodeMode::Off,
        MemModel::Macro,
    ),
    (
        IssueModel::PerInstr,
        IcnModel::Express,
        EngineMode::Parallel,
        2,
        DecodeMode::Off,
        MemModel::PerRequest,
    ),
    (
        IssueModel::Burst,
        IcnModel::PerHop,
        EngineMode::Parallel,
        2,
        DecodeMode::Off,
        MemModel::PerRequest,
    ),
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Sequential,
        0,
        DecodeMode::Cache,
        MemModel::Macro,
    ),
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Parallel,
        2,
        DecodeMode::Cache,
        MemModel::Macro,
    ),
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Sequential,
        0,
        DecodeMode::Off,
        MemModel::PerRequest,
    ),
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Parallel,
        2,
        DecodeMode::Off,
        MemModel::PerRequest,
    ),
];

/// One cycle-model run, reduced to its comparable observables.
#[derive(Debug, Clone)]
pub struct EngineRun {
    pub issue: IssueModel,
    pub icn: IcnModel,
    pub engine: EngineMode,
    /// Configured worker threads (parallel engine only; 0 otherwise).
    pub threads: u32,
    /// Whether the pre-decoded basic-block cache was in force.
    pub decode: DecodeMode,
    /// Which memory-system event model was in force.
    pub mem: MemModel,
    pub cycles: u64,
    pub time_ps: u64,
    pub instructions: u64,
    /// Host-side events processed — deliberately *not* compared.
    pub events: u64,
    /// The full statistics record, serialized for bit-comparison.
    pub stats_json: String,
    /// Final architectural state (memory image, global registers, TCU
    /// contexts), serialized for bit-comparison.
    pub machine_json: String,
    /// Final machine state, kept for per-global reads.
    pub machine: Machine,
}

impl EngineRun {
    /// Label like `Burst×Express` (sequential) or `Burst×Express×Par2`
    /// (parallel at 2 threads) for diagnostics; decode-cache rows carry
    /// a `×Cache` suffix and per-request memory rows a `×PerReq` suffix.
    pub fn label(&self) -> String {
        let mut l = match self.engine {
            EngineMode::Sequential => format!("{:?}×{:?}", self.issue, self.icn),
            EngineMode::Parallel => {
                format!("{:?}×{:?}×Par{}", self.issue, self.icn, self.threads)
            }
        };
        if self.decode == DecodeMode::Cache {
            l.push_str("×Cache");
        }
        if self.mem == MemModel::PerRequest {
            l.push_str("×PerReq");
        }
        l
    }
}

/// The functional-mode run of the same program.
#[derive(Debug, Clone)]
pub struct FunctionalRun {
    pub instructions: u64,
    pub machine: Machine,
}

/// Every engine's view of one program.
#[derive(Debug, Clone)]
pub struct AllEngines {
    pub functional: FunctionalRun,
    /// One entry per [`CYCLE_ENGINE_MATRIX`] row, in order.
    pub cycle: Vec<EngineRun>,
    exe: Executable,
}

/// Errors from a differential run.
#[derive(Debug)]
pub enum DifferentialError {
    Sim {
        engine: String,
        err: SimError,
    },
    Functional(FuncError),
    /// A cycle engine hit the instruction budget (it stops cleanly, but
    /// for a differential run a truncated execution is useless).
    InstrLimit {
        engine: String,
        executed: u64,
    },
}

impl std::fmt::Display for DifferentialError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DifferentialError::Sim { engine, err } => write!(f, "cycle engine {engine}: {err}"),
            DifferentialError::Functional(e) => write!(f, "functional engine: {e}"),
            DifferentialError::InstrLimit { engine, executed } => {
                write!(
                    f,
                    "cycle engine {engine}: instruction limit hit after {executed}"
                )
            }
        }
    }
}

impl std::error::Error for DifferentialError {}

/// How the caller wants one global compared between functional mode and
/// the cycle engines.
#[derive(Debug, Clone)]
pub enum FunctionalCheck {
    /// Word-for-word equality (race-free data).
    Exact { name: String, words: usize },
    /// Equality as a multiset (order-dependent placement with an
    /// order-independent value population — the `ps`-compaction idiom).
    Multiset { name: String, words: usize },
    /// The printed-integer streams must match (master-only prints).
    Prints,
}

/// Run `exe` on one cycle-model configuration.
#[allow(clippy::too_many_arguments)]
pub fn run_cycle_engine(
    exe: &Executable,
    cfg: &XmtConfig,
    issue: IssueModel,
    icn: IcnModel,
    engine: EngineMode,
    threads: u32,
    decode: DecodeMode,
    mem: MemModel,
    instr_limit: u64,
) -> Result<EngineRun, DifferentialError> {
    let mut cfg = cfg.clone();
    cfg.issue_model = issue;
    cfg.icn_model = icn;
    cfg.engine_mode = engine;
    cfg.decode_cache = decode;
    cfg.mem_model = mem;
    if engine == EngineMode::Parallel {
        cfg.threads = threads;
    }
    let label = || {
        let mut l = match engine {
            EngineMode::Sequential => format!("{issue:?}×{icn:?}"),
            EngineMode::Parallel => format!("{issue:?}×{icn:?}×Par{threads}"),
        };
        if decode == DecodeMode::Cache {
            l.push_str("×Cache");
        }
        if mem == MemModel::PerRequest {
            l.push_str("×PerReq");
        }
        l
    };
    let mut sim = CycleSim::new(exe.clone(), cfg);
    sim.set_instr_limit(instr_limit);
    let s = sim.run().map_err(|err| DifferentialError::Sim {
        engine: label(),
        err,
    })?;
    if !sim.machine.halted {
        return Err(DifferentialError::InstrLimit {
            engine: label(),
            executed: s.instructions,
        });
    }
    Ok(EngineRun {
        issue,
        icn,
        engine,
        threads,
        decode,
        mem,
        cycles: s.cycles,
        time_ps: s.time_ps,
        instructions: s.instructions,
        events: s.events,
        stats_json: sim.stats.to_json_string(),
        machine_json: sim.machine.to_json_string(),
        machine: sim.machine,
    })
}

/// Run `exe` through functional mode and all twelve cycle configurations
/// (sequential and sharded-parallel, decode cache off and on, macro and
/// per-request memory — see [`CYCLE_ENGINE_MATRIX`]).
///
/// `instr_limit` bounds every engine so a generated program that loops
/// forever surfaces as an error instead of a hang.
pub fn run_all_engines(
    exe: &Executable,
    cfg: &XmtConfig,
    instr_limit: u64,
) -> Result<AllEngines, DifferentialError> {
    let mut func = FunctionalSim::new(exe.clone());
    func.set_instr_limit(instr_limit);
    let instructions = func.run().map_err(DifferentialError::Functional)?;
    let functional = FunctionalRun {
        instructions,
        machine: func.machine,
    };

    let mut cycle = Vec::with_capacity(CYCLE_ENGINE_MATRIX.len());
    for (issue, icn, engine, threads, decode, mem) in CYCLE_ENGINE_MATRIX {
        cycle.push(run_cycle_engine(
            exe,
            cfg,
            issue,
            icn,
            engine,
            threads,
            decode,
            mem,
            instr_limit,
        )?);
    }
    Ok(AllEngines {
        functional,
        cycle,
        exe: exe.clone(),
    })
}

/// The engine rows [`check_obs_transparent`] pairs obs-off against
/// obs-on: both issue models through the sequential engine, plus the
/// batched default on the parallel engine and under decoded replay —
/// the configurations whose burst/offload fast paths would be the first
/// to notice an observer that wasn't pure.
pub const OBS_ENGINE_ROWS: [(IssueModel, IcnModel, EngineMode, u32, DecodeMode, MemModel); 4] = [
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Sequential,
        0,
        DecodeMode::Off,
        MemModel::Macro,
    ),
    (
        IssueModel::PerInstr,
        IcnModel::PerHop,
        EngineMode::Sequential,
        0,
        DecodeMode::Off,
        MemModel::PerRequest,
    ),
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Parallel,
        2,
        DecodeMode::Cache,
        MemModel::Macro,
    ),
    (
        IssueModel::Burst,
        IcnModel::Express,
        EngineMode::Sequential,
        0,
        DecodeMode::Cache,
        MemModel::Macro,
    ),
];

/// Prove observability is a pure observer: for every [`OBS_ENGINE_ROWS`]
/// configuration, run `exe` with `obs_detail = Off` and again with
/// `Full` (periodic metric sampling and host profiling on — the
/// worst-case recording load), and assert the two runs are bit-identical
/// in cycles, simulated time, instruction count, statistics record and
/// final machine image. Also asserts the obs run actually recorded a
/// non-empty timeline, so a recorder wired to nothing can't pass
/// trivially.
pub fn check_obs_transparent(
    exe: &Executable,
    cfg: &XmtConfig,
    instr_limit: u64,
) -> Result<(), String> {
    for (issue, icn, engine, threads, decode, mem) in OBS_ENGINE_ROWS {
        let off = run_cycle_engine(exe, cfg, issue, icn, engine, threads, decode, mem, instr_limit)
            .map_err(|e| format!("obs-off run failed: {e}"))?;
        let mut on_cfg = cfg.clone();
        on_cfg.issue_model = issue;
        on_cfg.icn_model = icn;
        on_cfg.engine_mode = engine;
        on_cfg.decode_cache = decode;
        on_cfg.mem_model = mem;
        on_cfg.obs_detail = crate::config::ObsDetail::Full;
        if engine == EngineMode::Parallel {
            on_cfg.threads = threads;
        }
        let mut sim = CycleSim::new(exe.clone(), on_cfg);
        sim.set_instr_limit(instr_limit);
        sim.set_obs_sample_interval(64);
        sim.enable_host_profiling();
        let s = sim
            .run()
            .map_err(|e| format!("obs-on {} run failed: {e}", off.label()))?;
        let label = off.label();
        if s.cycles != off.cycles {
            return Err(format!(
                "{label}: obs-on cycles {} != obs-off {}",
                s.cycles, off.cycles
            ));
        }
        if s.time_ps != off.time_ps {
            return Err(format!(
                "{label}: obs-on time_ps {} != obs-off {}",
                s.time_ps, off.time_ps
            ));
        }
        if s.instructions != off.instructions {
            return Err(format!(
                "{label}: obs-on instructions {} != obs-off {}",
                s.instructions, off.instructions
            ));
        }
        let stats_json = sim.stats.to_json_string();
        if stats_json != off.stats_json {
            return Err(format!(
                "{label}: obs-on stats diverge at {}",
                first_divergence(&stats_json, &off.stats_json)
            ));
        }
        let machine_json = sim.machine.to_json_string();
        if machine_json != off.machine_json {
            return Err(format!(
                "{label}: obs-on machine state diverges at {}",
                first_divergence(&machine_json, &off.machine_json)
            ));
        }
        let recorded = sim.obs().map_or(0, |o| o.timeline.records().len());
        if recorded == 0 {
            return Err(format!(
                "{label}: obs-on run recorded nothing — the transparency \
                 check would be vacuous"
            ));
        }
    }
    Ok(())
}

/// First differing byte of two strings, with context — JSON blobs are
/// huge, so a targeted excerpt beats dumping both sides.
fn first_divergence(a: &str, b: &str) -> String {
    let pos = a
        .bytes()
        .zip(b.bytes())
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.len().min(b.len()));
    let lo = pos.saturating_sub(48);
    let excerpt = |s: &str| {
        let hi = (pos + 32).min(s.len());
        s.get(lo..hi).unwrap_or("<non-utf8 boundary>").to_string()
    };
    format!("byte {pos}: ...{}... vs ...{}...", excerpt(a), excerpt(b))
}

impl AllEngines {
    /// The reference cycle run (the `Burst`×`Express` default).
    pub fn reference(&self) -> &EngineRun {
        &self.cycle[0]
    }

    /// Assert all cycle configurations agree on every architecturally
    /// observable quantity. Returns a field-level report on divergence.
    pub fn check_cycle_identical(&self) -> Result<(), String> {
        let r = self.reference();
        for e in &self.cycle[1..] {
            if e.cycles != r.cycles {
                return Err(format!(
                    "{} vs {}: cycles {} != {}",
                    e.label(),
                    r.label(),
                    e.cycles,
                    r.cycles
                ));
            }
            if e.time_ps != r.time_ps {
                return Err(format!(
                    "{} vs {}: time_ps {} != {}",
                    e.label(),
                    r.label(),
                    e.time_ps,
                    r.time_ps
                ));
            }
            if e.instructions != r.instructions {
                return Err(format!(
                    "{} vs {}: instructions {} != {}",
                    e.label(),
                    r.label(),
                    e.instructions,
                    r.instructions
                ));
            }
            if e.stats_json != r.stats_json {
                return Err(format!(
                    "{} vs {}: stats diverge at {}",
                    e.label(),
                    r.label(),
                    first_divergence(&e.stats_json, &r.stats_json)
                ));
            }
            if e.machine_json != r.machine_json {
                return Err(format!(
                    "{} vs {}: machine state diverges at {}",
                    e.label(),
                    r.label(),
                    first_divergence(&e.machine_json, &r.machine_json)
                ));
            }
        }
        Ok(())
    }

    /// Assert functional mode and every cycle engine agree on the given
    /// order-free observables.
    pub fn check_functional_agrees(&self, checks: &[FunctionalCheck]) -> Result<(), String> {
        for check in checks {
            match check {
                FunctionalCheck::Exact { name, words } => {
                    let want = self.read_functional(name, *words)?;
                    for e in &self.cycle {
                        let got = read_machine(&e.machine, &self.exe, name, *words, &e.label())?;
                        if got != want {
                            let k = got.iter().zip(&want).position(|(g, w)| g != w).unwrap_or(0);
                            return Err(format!(
                                "functional vs {}: `{name}[{k}]` = {:#x} functional, {:#x} cycle",
                                e.label(),
                                want[k],
                                got[k]
                            ));
                        }
                    }
                }
                FunctionalCheck::Multiset { name, words } => {
                    let mut want = self.read_functional(name, *words)?;
                    want.sort_unstable();
                    for e in &self.cycle {
                        let mut got =
                            read_machine(&e.machine, &self.exe, name, *words, &e.label())?;
                        got.sort_unstable();
                        if got != want {
                            return Err(format!(
                                "functional vs {}: `{name}` multiset differs \
                                 (sorted functional {:?}.., sorted cycle {:?}..)",
                                e.label(),
                                &want[..want.len().min(8)],
                                &got[..got.len().min(8)],
                            ));
                        }
                    }
                }
                FunctionalCheck::Prints => {
                    let want = self.functional.machine.output.ints();
                    for e in &self.cycle {
                        let got = e.machine.output.ints();
                        if got != want {
                            return Err(format!(
                                "functional vs {}: printed {got:?}, functional printed {want:?}",
                                e.label()
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn read_functional(&self, name: &str, words: usize) -> Result<Vec<u32>, String> {
        read_machine(
            &self.functional.machine,
            &self.exe,
            name,
            words,
            "functional",
        )
    }
}

fn read_machine(
    m: &Machine,
    exe: &Executable,
    name: &str,
    words: usize,
    engine: &str,
) -> Result<Vec<u32>, String> {
    m.read_symbol(exe, name, words)
        .ok_or_else(|| format!("{engine}: global `{name}` ({words} words) unreadable"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::{AsmProgram, GlobalReg, Instr, MemoryMap, Reg, Target};

    /// `A[$] += $` over 12 threads, plus a master print — race-free, so
    /// every engine including functional must agree exactly.
    fn racefree_program() -> Executable {
        let n = 12;
        let mut mm = MemoryMap::new();
        let a = mm.push("A", (0..n as u32).map(|i| 100 + i).collect());
        let mut p = AsmProgram::new();
        p.push(Instr::Li {
            rt: Reg::A0,
            imm: 0,
        });
        p.push(Instr::Li {
            rt: Reg::A1,
            imm: n - 1,
        });
        p.push(Instr::Li {
            rt: Reg::S0,
            imm: a as i32,
        });
        p.push(Instr::Spawn {
            lo: Reg::A0,
            hi: Reg::A1,
        });
        p.label("vt");
        p.push(Instr::Li {
            rt: Reg::T0,
            imm: 1,
        });
        p.push(Instr::Ps {
            rt: Reg::T0,
            gr: GlobalReg::THREAD_ALLOC,
        });
        p.push(Instr::Chkid { rt: Reg::T0 });
        p.push(Instr::Sll {
            rd: Reg::T1,
            rt: Reg::T0,
            sh: 2,
        });
        p.push(Instr::Add {
            rd: Reg::T1,
            rs: Reg::T1,
            rt: Reg::S0,
        });
        p.push(Instr::Lw {
            rt: Reg::T2,
            base: Reg::T1,
            off: 0,
        });
        p.push(Instr::Add {
            rd: Reg::T2,
            rs: Reg::T2,
            rt: Reg::T0,
        });
        p.push(Instr::Swnb {
            rt: Reg::T2,
            base: Reg::T1,
            off: 0,
        });
        p.push(Instr::J {
            target: Target::label("vt"),
        });
        p.push(Instr::Join);
        p.push(Instr::Li {
            rt: Reg::T3,
            imm: 77,
        });
        p.push(Instr::Print { rs: Reg::T3 });
        p.push(Instr::Halt);
        p.link(mm).unwrap()
    }

    #[test]
    fn engine_matrix_agrees_on_racefree_program() {
        let exe = racefree_program();
        let all = run_all_engines(&exe, &XmtConfig::tiny(), 1 << 20).unwrap();
        assert_eq!(all.cycle.len(), CYCLE_ENGINE_MATRIX.len());
        all.check_cycle_identical().unwrap();
        all.check_functional_agrees(&[
            FunctionalCheck::Exact {
                name: "A".into(),
                words: 12,
            },
            FunctionalCheck::Prints,
        ])
        .unwrap();
        // The batched default really did elide events relative to the
        // full per-event oracle.
        let burst_express = &all.cycle[0];
        let perinstr_perhop = &all.cycle[3];
        assert!(burst_express.events < perinstr_perhop.events);
    }

    #[test]
    fn divergence_reports_name_the_engine_pair_and_field() {
        let exe = racefree_program();
        let mut all = run_all_engines(&exe, &XmtConfig::tiny(), 1 << 20).unwrap();
        all.cycle[2].cycles += 1;
        let msg = all.check_cycle_identical().unwrap_err();
        assert!(msg.contains("PerInstr×Express"), "{msg}");
        assert!(msg.contains("cycles"), "{msg}");
    }

    #[test]
    fn obs_full_is_bit_identical_on_racefree_program() {
        let exe = racefree_program();
        check_obs_transparent(&exe, &XmtConfig::tiny(), 1 << 20).unwrap();
    }

    #[test]
    fn instr_limit_converts_runaways_into_errors() {
        let mut p = AsmProgram::new();
        p.label("spin");
        p.push(Instr::J {
            target: Target::label("spin"),
        });
        let exe = p.link(MemoryMap::new()).unwrap();
        let err = run_all_engines(&exe, &XmtConfig::tiny(), 1000).unwrap_err();
        assert!(matches!(err, DifferentialError::Functional(_)));
    }
}
