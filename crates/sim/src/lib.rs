//! # xmtsim — cycle-accurate simulator of the XMT many-core architecture
//!
//! A Rust re-implementation of XMTSim (paper §III): a highly-configurable
//! discrete-event, execution-driven simulator of the XMT architecture —
//! Thread Control Units (TCUs) grouped into clusters, cluster-shared
//! MDU/FPU units, prefetch buffers, read-only caches, a mesh-of-trees
//! interconnection network, shared first-level cache modules with address
//! hashing, DRAM channels, the global prefix-sum unit and the spawn/join
//! unit with its instruction broadcast.
//!
//! Two simulation modes are provided, as in the paper:
//!
//! * the **cycle-accurate mode** ([`cycle::CycleSim`]) — models timing and
//!   contention of every component, and applies memory operations in
//!   *service order*, exposing the relaxed XMT memory model;
//! * the **fast functional mode** ([`functional::FunctionalSim`]) — runs
//!   the program by serializing parallel sections; orders of magnitude
//!   faster, no timing, usable as a quick debugging tool (and for
//!   fast-forwarding).
//!
//! Statistics (instruction and activity counters with filter/activity
//! plug-ins, §III-B), power and temperature estimation with runtime
//! clock-domain control (§III-F), execution traces, floorplan
//! visualization and checkpoints (§III-E) are all available.

pub mod checkpoint;
pub mod config;
pub mod cycle;
pub mod decode;
pub mod differential;
pub mod engine;
pub mod exec;
pub mod floorplan;
pub mod functional;
pub mod machine;
pub mod obs;
pub mod phase;
pub mod power;
pub mod stats;
pub mod trace;

pub use config::{DecodeMode, EngineMode, IcnModel, IssueModel, MemModel, ObsDetail, XmtConfig};
pub use cycle::CycleSim;
pub use obs::{MetricsRegistry, Timeline};
pub use differential::{run_all_engines, AllEngines, FunctionalCheck};
pub use exec::{CostClass, Issued, MemKind, MemRequest, Mode};
pub use functional::FunctionalSim;
pub use machine::{Machine, Memory, Output, OutputItem, RegFile, ThreadCtx, Trap};
