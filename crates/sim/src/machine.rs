//! Architectural state of the simulated XMT machine: the shared memory,
//! per-context register files, the global (prefix-sum) registers and the
//! simulation output stream.
//!
//! This is the state owned by the *functional model* of paper Fig. 3 — the
//! cycle-accurate model fetches instructions, delays them, and applies
//! their operational semantics to this state.

use std::collections::BTreeMap;
use xmt_harness::{json_enum, json_struct};
use std::fmt;
use xmt_isa::{Executable, FReg, GlobalReg, Reg, HEAP_PTR_ADDR};

/// Size of one memory page (bytes).
const PAGE_SIZE: u32 = 4096;

/// Sparse byte-addressable memory, allocated in 4 KiB pages on first
/// touch. `BTreeMap` keeps dumps and checkpoints deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Memory {
    pages: BTreeMap<u32, Vec<u8>>,
}

json_struct!(Memory { pages });

impl Memory {
    /// Empty memory (all bytes read as zero).
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&self, addr: u32) -> Option<&Vec<u8>> {
        self.pages.get(&(addr / PAGE_SIZE))
    }

    fn page_mut(&mut self, addr: u32) -> &mut Vec<u8> {
        self.pages
            .entry(addr / PAGE_SIZE)
            .or_insert_with(|| vec![0; PAGE_SIZE as usize])
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map(|p| p[(addr % PAGE_SIZE) as usize])
            .unwrap_or(0)
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u32, val: u8) {
        self.page_mut(addr)[(addr % PAGE_SIZE) as usize] = val;
    }

    /// Read an aligned 32-bit little-endian word. The caller checks
    /// alignment (the execution layer raises [`Trap::Misaligned`]).
    pub fn read_u32(&self, addr: u32) -> u32 {
        debug_assert_eq!(addr % 4, 0);
        // A word never straddles a page (page size is a multiple of 4).
        match self.page(addr) {
            Some(p) => {
                let i = (addr % PAGE_SIZE) as usize;
                u32::from_le_bytes([p[i], p[i + 1], p[i + 2], p[i + 3]])
            }
            None => 0,
        }
    }

    /// Write an aligned 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: u32, val: u32) {
        debug_assert_eq!(addr % 4, 0);
        let p = self.page_mut(addr);
        let i = (addr % PAGE_SIZE) as usize;
        p[i..i + 4].copy_from_slice(&val.to_le_bytes());
    }

    /// Read `count` consecutive words starting at `addr`.
    pub fn read_words(&self, addr: u32, count: usize) -> Vec<u32> {
        (0..count as u32).map(|k| self.read_u32(addr + 4 * k)).collect()
    }

    /// Write consecutive words starting at `addr`.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) {
        for (k, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * k as u32, *w);
        }
    }

    /// Number of touched pages (memory footprint indicator).
    pub fn pages_touched(&self) -> usize {
        self.pages.len()
    }
}

/// The integer + floating-point register file of one hardware context
/// (one TCU, or the Master TCU).
#[derive(Debug, Clone, PartialEq)]
pub struct RegFile {
    int: [u32; 32],
    fp: [f32; 16],
}

json_struct!(RegFile { int, fp });

impl Default for RegFile {
    fn default() -> Self {
        RegFile { int: [0; 32], fp: [0.0; 16] }
    }
}

impl RegFile {
    /// Read an integer register (`$zero` always reads 0).
    #[inline]
    pub fn get(&self, r: Reg) -> u32 {
        self.int[r.number() as usize]
    }

    /// Read an integer register as signed.
    #[inline]
    pub fn get_i(&self, r: Reg) -> i32 {
        self.get(r) as i32
    }

    /// Write an integer register (writes to `$zero` are discarded).
    #[inline]
    pub fn set(&mut self, r: Reg, v: u32) {
        if r != Reg::Zero {
            self.int[r.number() as usize] = v;
        }
    }

    /// Write a signed value to an integer register.
    #[inline]
    pub fn set_i(&mut self, r: Reg, v: i32) {
        self.set(r, v as u32);
    }

    /// Read an FP register.
    #[inline]
    pub fn getf(&self, r: FReg) -> f32 {
        self.fp[r.0 as usize]
    }

    /// Write an FP register.
    #[inline]
    pub fn setf(&mut self, r: FReg, v: f32) {
        self.fp[r.0 as usize] = v;
    }
}

/// One hardware execution context: register file plus program counter
/// (an instruction index into the text segment).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ThreadCtx {
    pub regs: RegFile,
    pub pc: u32,
}

json_struct!(ThreadCtx { regs, pc });

/// One item on the simulation output stream (the `print` family — the
/// paper's printf plug-in output).
#[derive(Debug, Clone, PartialEq)]
pub enum OutputItem {
    Int(i32),
    Float(f32),
    Char(char),
}

json_enum!(OutputItem { Int(i32), Float(f32), Char(char) });

/// The collected output of a simulated program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Output {
    pub items: Vec<OutputItem>,
}

json_struct!(Output { items });

impl Output {
    /// Render the output stream as text: ints/floats newline-separated,
    /// chars verbatim.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for item in &self.items {
            match item {
                OutputItem::Int(v) => {
                    s.push_str(&v.to_string());
                    s.push('\n');
                }
                OutputItem::Float(v) => {
                    s.push_str(&format!("{v:?}"));
                    s.push('\n');
                }
                OutputItem::Char(c) => s.push(*c),
            }
        }
        s
    }

    /// Just the integer items, in order (the common shape in tests).
    pub fn ints(&self) -> Vec<i32> {
        self.items
            .iter()
            .filter_map(|i| match i {
                OutputItem::Int(v) => Some(*v),
                _ => None,
            })
            .collect()
    }
}

/// A runtime error raised by the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Unaligned word access.
    Misaligned { pc: u32, addr: u32 },
    /// Program counter left the text segment.
    PcOutOfRange { pc: u32 },
    /// A TCU fell through into the `join` marker — the compiler must end
    /// every virtual thread with a jump back to the `ps`/`chkid` header.
    FellThroughJoin { pc: u32 },
    /// `spawn` executed while already in parallel mode (nested spawns are
    /// serialized by the compiler, never reach hardware).
    SpawnInParallel { pc: u32 },
    /// `halt` executed by a TCU (serial-only instruction).
    HaltInParallel { pc: u32 },
    /// `chkid` executed outside a parallel section.
    ChkidOutsideSpawn { pc: u32 },
    /// `ps` increment was not 0 or 1 (hardware restriction, paper §II-A).
    PsIncrementInvalid { pc: u32, value: i32 },
    /// `grput` executed by a TCU (global registers are written by the
    /// master only; TCUs coordinate through `ps`).
    GrputInParallel { pc: u32 },
    /// `join` reached by the master outside a spawn (linker should have
    /// rejected this program).
    StrayJoin { pc: u32 },
}

json_enum!(Trap {
    Misaligned { pc, addr },
    PcOutOfRange { pc },
    FellThroughJoin { pc },
    SpawnInParallel { pc },
    HaltInParallel { pc },
    ChkidOutsideSpawn { pc },
    PsIncrementInvalid { pc, value },
    GrputInParallel { pc },
    StrayJoin { pc },
});

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Misaligned { pc, addr } => {
                write!(f, "misaligned word access to 0x{addr:08x} at instruction {pc}")
            }
            Trap::PcOutOfRange { pc } => write!(f, "pc {pc} out of text segment"),
            Trap::FellThroughJoin { pc } => {
                write!(f, "virtual thread fell through into `join` at instruction {pc}")
            }
            Trap::SpawnInParallel { pc } => {
                write!(f, "`spawn` inside a parallel section at instruction {pc}")
            }
            Trap::HaltInParallel { pc } => {
                write!(f, "`halt` executed by a TCU at instruction {pc}")
            }
            Trap::ChkidOutsideSpawn { pc } => {
                write!(f, "`chkid` outside a parallel section at instruction {pc}")
            }
            Trap::PsIncrementInvalid { pc, value } => {
                write!(f, "`ps` increment {value} not in {{0,1}} at instruction {pc}")
            }
            Trap::GrputInParallel { pc } => {
                write!(f, "`grput` executed by a TCU at instruction {pc}")
            }
            Trap::StrayJoin { pc } => write!(f, "stray `join` at instruction {pc}"),
        }
    }
}

impl std::error::Error for Trap {}

/// The complete functional-model state shared by all execution contexts.
#[derive(Debug, Clone, PartialEq)]
pub struct Machine {
    /// The shared memory.
    pub mem: Memory,
    /// The chip-wide global registers of the prefix-sum unit.
    pub gregs: [u32; GlobalReg::COUNT as usize],
    /// Output stream.
    pub output: Output,
    /// Set once `halt` executes.
    pub halted: bool,
}

json_struct!(Machine { mem, gregs, output, halted });

impl Machine {
    /// Build the initial machine state for an executable: load the memory
    /// map into the data segment and initialize the heap-break word used
    /// by serial dynamic allocation.
    pub fn load(exe: &Executable) -> Self {
        let mut mem = Memory::new();
        let mut data_end = 0u32;
        for e in &exe.memmap.entries {
            mem.write_words(e.addr, &e.words);
            data_end = data_end.max(e.addr + e.byte_len());
        }
        // Heap starts past the static data, rounded up to a page.
        let heap_base = (data_end.max(xmt_isa::DATA_BASE) + PAGE_SIZE) & !(PAGE_SIZE - 1);
        mem.write_u32(HEAP_PTR_ADDR, heap_base);
        Machine {
            mem,
            gregs: [0; GlobalReg::COUNT as usize],
            output: Output::default(),
            halted: false,
        }
    }

    /// Atomic prefix-sum on a global register: returns the old value.
    pub fn ps(&mut self, gr: GlobalReg, inc: u32) -> u32 {
        let slot = &mut self.gregs[gr.0 as usize];
        let old = *slot;
        *slot = slot.wrapping_add(inc);
        old
    }

    /// Read the value of a data-segment symbol as words.
    pub fn read_symbol(&self, exe: &Executable, name: &str, count: usize) -> Option<Vec<u32>> {
        let addr = exe.data_symbol(name)?;
        Some(self.mem.read_words(addr, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::{AsmProgram, Instr, MemoryMap};

    #[test]
    fn memory_default_zero_and_rw() {
        let mut m = Memory::new();
        assert_eq!(m.read_u32(0x1000_0000), 0);
        m.write_u32(0x1000_0000, 0xdead_beef);
        assert_eq!(m.read_u32(0x1000_0000), 0xdead_beef);
        assert_eq!(m.read_u8(0x1000_0000), 0xef); // little endian
        m.write_u8(0x1000_0003, 0x01);
        assert_eq!(m.read_u32(0x1000_0000), 0x01ad_beef);
    }

    #[test]
    fn memory_words_roundtrip_across_pages() {
        let mut m = Memory::new();
        let base = PAGE_SIZE - 8; // straddles a page boundary
        let vals = vec![1, 2, 3, 4, 5];
        m.write_words(base, &vals);
        assert_eq!(m.read_words(base, 5), vals);
        assert_eq!(m.pages_touched(), 2);
    }

    #[test]
    fn zero_register_is_hardwired() {
        let mut r = RegFile::default();
        r.set(Reg::Zero, 42);
        assert_eq!(r.get(Reg::Zero), 0);
        r.set_i(Reg::T0, -7);
        assert_eq!(r.get_i(Reg::T0), -7);
    }

    #[test]
    fn ps_returns_old_value() {
        let mut m = Machine {
            mem: Memory::new(),
            gregs: [0; 8],
            output: Output::default(),
            halted: false,
        };
        assert_eq!(m.ps(GlobalReg(1), 1), 0);
        assert_eq!(m.ps(GlobalReg(1), 1), 1);
        assert_eq!(m.ps(GlobalReg(1), 0), 2); // read without increment
        assert_eq!(m.gregs[1], 2);
    }

    #[test]
    fn load_initializes_data_and_heap() {
        let mut p = AsmProgram::new();
        p.push(Instr::Halt);
        let mut mm = MemoryMap::new();
        let a = mm.push("A", vec![7, 8, 9]);
        let exe = p.link(mm).unwrap();
        let m = Machine::load(&exe);
        assert_eq!(m.mem.read_words(a, 3), vec![7, 8, 9]);
        let heap = m.mem.read_u32(HEAP_PTR_ADDR);
        assert!(heap > a + 12);
        assert_eq!(heap % PAGE_SIZE, 0);
        assert_eq!(m.read_symbol(&exe, "A", 3), Some(vec![7, 8, 9]));
    }

    #[test]
    fn output_rendering() {
        let out = Output {
            items: vec![
                OutputItem::Int(-3),
                OutputItem::Char('x'),
                OutputItem::Float(1.5),
            ],
        };
        assert_eq!(out.to_text(), "-3\nx1.5\n");
        assert_eq!(out.ints(), vec![-3]);
    }
}
