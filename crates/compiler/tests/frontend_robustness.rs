//! Robustness of the compiler front end: no input may panic the
//! lexer/parser/compiler — malformed programs must come back as typed
//! errors with source positions.

use xmt_harness::prop::{run, Config, Gen};
use xmtc::{CompileError, Options};

/// Arbitrary byte soup (as UTF-8 strings) never panics the pipeline.
#[test]
fn arbitrary_text_never_panics() {
    run("arbitrary_text_never_panics", Config::default(), |g: &mut Gen| {
        let src = g.string(400);
        let _ = xmtc::compile(&src, &Options::default());
    });
}

/// Token soup drawn from the language's own vocabulary never panics
/// and, when it fails, fails with a positioned error.
#[test]
fn token_soup_never_panics() {
    const VOCAB: &[&str] = &[
        "int", "float", "void", "if", "else", "while", "for", "return",
        "spawn", "ps", "psm", "$", "(", ")", "{", "}", "[", "]", ";",
        ",", "+", "-", "*", "/", "%", "=", "==", "<", ">", "&&", "||",
        "x", "y", "main", "0", "1", "42", "3.5", "?", ":", "&", "!",
        "volatile", "const", "break", "continue", "<<=", "^=",
    ];
    run("token_soup_never_panics", Config::default(), |g: &mut Gen| {
        let toks = g.vec_of(0, 120, |g| *g.choose(VOCAB));
        let src = toks.join(" ");
        match xmtc::compile(&src, &Options::default()) {
            Ok(_) => {}
            Err(CompileError::Parse(e)) => {
                assert!(e.span.line >= 1);
            }
            Err(_) => {}
        }
    });
}

/// Error positions point at the offending construct.
#[test]
fn diagnostics_have_accurate_positions() {
    let err = xmtc::compile("void main() {\n  int x = ;\n}", &Options::default()).unwrap_err();
    let CompileError::Parse(e) = err else { panic!("expected parse error") };
    assert_eq!(e.span.line, 2);

    let err = xmtc::compile(
        "void main() {\n\n  int y = $;\n}",
        &Options::default(),
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("3:"), "span in message: {msg}");
    assert!(msg.contains("spawn"));
}

/// A grab bag of malformed programs: all typed errors, no panics.
#[test]
fn malformed_corpus() {
    let cases = [
        "",
        "int",
        "void main( {}",
        "void main() { spawn(0 10) {} }",
        "void main() { spawn(0, 10) { return 3; } }",
        "int main(int argc) {}",
        "void f() {} void f() {} void main() {}",
        "void main() { x = 1; }",
        "void main() { int a[1000000000]; }",
        "float f(float x) { return x; } void main() {}",
        "void main() { if (1) } ",
        "void main() { 1 + ; }",
        "void main() { int x = (1 ? 2); }",
        "int a = \"str\"; void main() {}",
        "void main() { for (;;) {} } // unbounded but legal",
        "void main() { psm(1, 2); }",
        "void main() { ps(1); }",
        "/* unterminated",
        "void main() { int x = 0x; }",
    ];
    for src in cases {
        let _ = xmtc::compile(src, &Options::default());
    }
}
