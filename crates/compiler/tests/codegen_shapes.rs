//! Shape assertions on the generated assembly: the XMT-specific code
//! patterns of §IV-C/D must appear (or not) in the right places.

use xmtc::{compile, Options};
use xmt_isa::asm;
use xmt_isa::{AsmItem, Instr};

fn asm_of(src: &str, opts: &Options) -> Vec<Instr> {
    compile(src, opts)
        .expect("compiles")
        .asm
        .instrs()
        .cloned()
        .collect()
}

fn text_of(src: &str, opts: &Options) -> String {
    asm::to_text(&compile(src, opts).unwrap().asm)
}

const SPAWN_SRC: &str = "
    int A[16]; int N = 16;
    void main() { spawn(0, N - 1) { A[$] = $ + 1; } }
";

/// The §IV-D virtual-thread scheduling harness: `spawn` is followed by
/// `li 1; ps gr0; chkid`, the body loops back with `j`, and `join` comes
/// last.
#[test]
fn spawn_emits_ps_chkid_harness() {
    let instrs = asm_of(SPAWN_SRC, &Options::default());
    let spawn = instrs.iter().position(|i| matches!(i, Instr::Spawn { .. })).unwrap();
    let join = instrs.iter().position(|i| matches!(i, Instr::Join)).unwrap();
    assert!(spawn < join);
    let window = &instrs[spawn + 1..join];
    // li 1 feeding a ps on gr0 feeding a chkid, in order.
    let ps = window
        .iter()
        .position(|i| matches!(i, Instr::Ps { gr, .. } if gr.0 == 0))
        .expect("thread-allocation ps");
    assert!(
        matches!(window[ps - 1], Instr::Li { imm: 1, .. }),
        "ps increment must be the constant 1"
    );
    assert!(matches!(window[ps + 1], Instr::Chkid { .. }), "chkid validates the id");
    // Exactly one loop-back jump to the harness inside the window.
    assert!(window.iter().any(|i| matches!(i, Instr::J { .. })));
    // No serial-only instructions inside the broadcast window.
    assert!(!window.iter().any(|i| matches!(
        i,
        Instr::Halt | Instr::Jal { .. } | Instr::Jr { .. } | Instr::Spawn { .. }
    )));
}

/// §IV-C: stores in parallel code become non-blocking; serial stores
/// stay blocking.
#[test]
fn nonblocking_stores_only_in_parallel() {
    let src = "
        int A[16]; int B[4]; int N = 16;
        void main() {
            B[0] = 7;                       // serial store
            spawn(0, N - 1) { A[$] = $; }   // parallel store
            B[1] = 9;                       // serial store
        }
    ";
    let instrs = asm_of(src, &Options::default());
    let spawn = instrs.iter().position(|i| matches!(i, Instr::Spawn { .. })).unwrap();
    let join = instrs.iter().position(|i| matches!(i, Instr::Join)).unwrap();
    for (k, i) in instrs.iter().enumerate() {
        match i {
            Instr::Swnb { .. } => {
                assert!(k > spawn && k < join, "swnb outside the spawn window at {k}")
            }
            Instr::Sw { .. } => {
                assert!(
                    k < spawn || k > join,
                    "blocking sw inside the spawn window at {k}"
                )
            }
            _ => {}
        }
    }
    // With the pass disabled, no swnb at all.
    let mut opts = Options::default();
    opts.nb_stores = false;
    let instrs = asm_of(src, &opts);
    assert!(!instrs.iter().any(|i| matches!(i, Instr::Swnb { .. })));
}

/// §IV-A: every ps/psm in parallel code is preceded by a fence.
#[test]
fn fence_precedes_every_parallel_prefix_sum() {
    let src = "
        int ctr; int base; int N = 16;
        void main() {
            spawn(0, N - 1) {
                int one = 1;
                psm(one, ctr);
                int inc = 1;
                ps(inc, base);
            }
        }
    ";
    let instrs = asm_of(src, &Options::default());
    let spawn = instrs.iter().position(|i| matches!(i, Instr::Spawn { .. })).unwrap();
    let join = instrs.iter().position(|i| matches!(i, Instr::Join)).unwrap();
    for k in spawn + 1..join {
        let is_user_prefix_sum = match &instrs[k] {
            Instr::Psm { .. } => true,
            // gr0 is the thread-allocation ps of the harness (the
            // hardware protocol, not a user prefix-sum).
            Instr::Ps { gr, .. } => gr.0 != 0,
            _ => false,
        };
        if is_user_prefix_sum {
            let fence_before = (spawn + 1..k)
                .rev()
                .take(4)
                .any(|j| matches!(instrs[j], Instr::Fence));
            assert!(fence_before, "no fence shortly before prefix-sum at {k}");
        }
    }
    // With fences disabled: none.
    let mut opts = Options::default();
    opts.fences = false;
    let instrs = asm_of(src, &opts);
    assert!(!instrs.iter().any(|i| matches!(i, Instr::Fence)));
}

/// §IV-C prefetch batching: multi-stream loads get `pref` instructions.
#[test]
fn prefetch_instructions_emitted_for_load_batches() {
    let src = "
        int A[16]; int B[16]; int C[16]; int O[16]; int N = 16;
        void main() { spawn(0, N-1) { O[$] = A[$] + B[$] + C[$]; } }
    ";
    let instrs = asm_of(src, &Options::default());
    let prefs = instrs.iter().filter(|i| matches!(i, Instr::Pref { .. })).count();
    assert_eq!(prefs, 2, "two of the three loads prefetched (first one blocks anyway)");
    let mut opts = Options::default();
    opts.prefetch = false;
    let instrs = asm_of(src, &opts);
    assert!(!instrs.iter().any(|i| matches!(i, Instr::Pref { .. })));
}

/// Read-only cache loads appear exactly for const globals in parallel
/// code, and only when enabled.
#[test]
fn ro_loads_for_const_globals() {
    let src = "
        const int T[8]; int A[8]; int O[16]; int N = 16;
        void main() {
            int x = T[0];    // serial read of const: plain lw
            spawn(0, N - 1) { O[$] = T[$ % 8] + A[$ % 8]; }
            O[0] = x;
        }
    ";
    let mut opts = Options::default();
    opts.ro_cache_const = true;
    let text = text_of(src, &opts);
    assert!(text.contains("lwro"), "const loads in parallel use the RO cache:\n{text}");
    // A (non-const) must not use lwro; count: only T's load does.
    let instrs = asm_of(src, &opts);
    let ro = instrs.iter().filter(|i| matches!(i, Instr::Lwro { .. })).count();
    assert_eq!(ro, 1);

    let text = text_of(src, &Options::default());
    assert!(!text.contains("lwro"), "disabled by default");
}

/// Serial functions that call others save/restore `ra` and use the
/// standard frame; leaf serial functions don't touch the stack.
#[test]
fn prologue_epilogue_shapes() {
    let src = "
        int leaf(int x) { return x * 2 + 1; }
        int caller(int x) { return leaf(x) + leaf(x + 1); }
        void main() { print(caller(5)); }
    ";
    let out = compile(src, &Options::default()).unwrap();
    let text = asm::to_text(&out.asm);
    // caller saves ra; leaf never stores to the stack.
    let caller_body: String = text
        .lines()
        .skip_while(|l| !l.starts_with("caller:"))
        .take_while(|l| !l.starts_with("main:") || l.starts_with("caller:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(caller_body.contains("$ra"), "caller saves ra:\n{caller_body}");
    assert!(caller_body.contains("jal leaf"));
    let leaf_body: String = text
        .lines()
        .skip_while(|l| !l.starts_with("leaf:"))
        .take_while(|l| !l.contains("caller:"))
        .collect::<Vec<_>>()
        .join("\n");
    assert!(!leaf_body.contains("sw $ra"), "leaf needs no ra save:\n{leaf_body}");
    // Program still runs correctly end to end.
    let exe = out.link().unwrap();
    let mut sim = xmtsim::FunctionalSim::new(exe);
    sim.run().unwrap();
    assert_eq!(sim.machine.output.ints(), vec![(5 * 2 + 1) + (6 * 2 + 1)]);
}

/// Serial register pressure spills to the stack frame rather than
/// failing (the §IV-D error is parallel-only).
#[test]
fn serial_pressure_spills_to_frame() {
    let mut decls = String::new();
    let mut uses = String::new();
    for k in 0..30 {
        decls.push_str(&format!("int v{k} = {k} * 3;\n"));
        uses.push_str(&format!(" + v{k}"));
    }
    let src = format!("void main() {{ {decls} print(0 {uses}); }}");
    let out = compile(&src, &Options::o0()).expect("serial spills are fine");
    // The frame is created and used.
    let text = asm::to_text(&out.asm);
    assert!(text.contains("addi $sp, $sp, -"), "frame allocated:\n{text}");
    let exe = out.link().unwrap();
    let mut sim = xmtsim::FunctionalSim::new(exe);
    sim.run().unwrap();
    let want: i32 = (0..30).map(|k| k * 3).sum();
    assert_eq!(sim.machine.output.ints(), vec![want]);
}

/// The post-pass counter reports relocations whenever cold-block sinking
/// displaced spawn code (and the final assembly still verifies).
#[test]
fn layout_fix_counter_reports_relocations() {
    let src = "
        int A[64]; int hits = 0; int N = 64;
        void main() {
            spawn(0, N - 1) {
                if (A[$] == 77) { int one = 1; psm(one, hits); }
            }
        }
    ";
    let with_sink = compile(src, &Options::default()).unwrap();
    assert!(with_sink.layout_fixes > 0, "sinking created Fig. 9 layouts to repair");
    let mut opts = Options::default();
    opts.sink_cold_blocks = false;
    let without = compile(src, &opts).unwrap();
    assert_eq!(without.layout_fixes, 0);
}

/// Assembly text of a full compile re-parses and re-links identically
/// (the post-pass path through the textual assembler is lossless).
#[test]
fn emitted_assembly_roundtrips_through_text()
{
    let out = compile(SPAWN_SRC, &Options::default()).unwrap();
    let text = asm::to_text(&out.asm);
    let reparsed = asm::parse(&text).unwrap();
    let orig_instrs: Vec<&Instr> = out.asm.instrs().collect();
    let re_instrs: Vec<&Instr> = reparsed.instrs().collect();
    assert_eq!(orig_instrs, re_instrs);
    // Labels survive too (compare non-comment items).
    let strip = |p: &xmt_isa::AsmProgram| {
        p.items
            .iter()
            .filter(|i| !matches!(i, AsmItem::Comment(_)))
            .cloned()
            .collect::<Vec<_>>()
    };
    assert_eq!(strip(&out.asm), strip(&reparsed));
}
