//! Abstract syntax of XMTC.
//!
//! XMTC is a single-program multiple-data extension of a C subset
//! (paper §II-A): serial C code plus the `spawn(lo, hi) { ... }` parallel
//! "loop", the virtual thread id `$`, and the prefix-sum primitives
//! `ps(local, base)` / `psm(local, lvalue)`.

use crate::lexer::Span;
use std::fmt;

/// XMTC types. Arrays appear only in declarations and decay to pointers
/// in expressions, as in C.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    Int,
    Float,
    Void,
    Ptr(Box<Type>),
}

impl Type {
    /// Pointer to this type.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// The pointee, if this is a pointer.
    pub fn deref(&self) -> Option<&Type> {
        match self {
            Type::Ptr(t) => Some(t),
            _ => None,
        }
    }

    /// Is this a scalar number (int or float)?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Float)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Float => f.write_str("float"),
            Type::Void => f.write_str("void"),
            Type::Ptr(t) => write!(f, "{t}*"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Shl,
    Shr,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    BitAnd,
    BitOr,
    BitXor,
    /// Short-circuit logical and/or.
    LogAnd,
    LogOr,
}

impl BinOp {
    /// Does this operator produce an `int` 0/1 result?
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    /// Logical not (`!`).
    Not,
    /// Bitwise not (`~`).
    BitNot,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64),
    FloatLit(f64),
    Ident(String, Span),
    /// `$` — the virtual thread id.
    Dollar(Span),
    Unary { op: UnOp, e: Box<Expr> },
    Binary { op: BinOp, l: Box<Expr>, r: Box<Expr> },
    /// `cond ? t : e`.
    Ternary { c: Box<Expr>, t: Box<Expr>, e: Box<Expr> },
    /// `base[idx]`.
    Index { base: Box<Expr>, idx: Box<Expr> },
    /// `*e`.
    Deref(Box<Expr>),
    /// `&e` (lvalues only).
    AddrOf(Box<Expr>, Span),
    /// `(type) e`.
    Cast { ty: Type, e: Box<Expr> },
    /// Function or builtin call.
    Call { name: String, args: Vec<Expr>, span: Span },
    /// `ps(local, base)` — hardware prefix-sum on a global register.
    /// Both arguments are lvalues; evaluates to void.
    Ps { local: Box<Expr>, base: Box<Expr>, span: Span },
    /// `psm(local, target)` — prefix-sum to memory.
    Psm { local: Box<Expr>, target: Box<Expr>, span: Span },
}

impl Expr {
    /// The span most useful for diagnostics about this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident(_, s)
            | Expr::Dollar(s)
            | Expr::AddrOf(_, s)
            | Expr::Call { span: s, .. }
            | Expr::Ps { span: s, .. }
            | Expr::Psm { span: s, .. } => *s,
            Expr::Unary { e, .. } | Expr::Deref(e) | Expr::Cast { e, .. } => e.span(),
            Expr::Binary { l, .. } | Expr::Ternary { c: l, .. } | Expr::Index { base: l, .. } => {
                l.span()
            }
            Expr::IntLit(_) | Expr::FloatLit(_) => Span::default(),
        }
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Local declaration `ty name [= init];` or `ty name[n];`.
    Decl {
        name: String,
        ty: Type,
        /// Fixed element count for local arrays (serial code only).
        array: Option<u32>,
        init: Option<Expr>,
        span: Span,
    },
    /// `target op= value;` (`op == None` is plain `=`).
    Assign { target: Expr, op: Option<BinOp>, value: Expr, span: Span },
    If { cond: Expr, then: Block, els: Option<Block> },
    While { cond: Expr, body: Block },
    DoWhile { body: Block, cond: Expr },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
    },
    Break(Span),
    Continue(Span),
    Return(Option<Expr>, Span),
    /// Expression statement (calls, ps/psm).
    Expr(Expr),
    /// `spawn(lo, hi) { ... }` (paper §II-A).
    Spawn { lo: Expr, hi: Expr, body: Block, span: Span },
    Block(Block),
    Empty,
}

/// A brace-delimited statement list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// Initializer of a global.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Scalar initializer (constant expression, folded by the parser).
    Scalar(f64),
    /// Array initializer list.
    List(Vec<f64>),
}

/// A global variable declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDecl {
    pub name: String,
    pub ty: Type,
    /// Element count when this is an array.
    pub array: Option<u32>,
    pub init: Option<GlobalInit>,
    /// `volatile`: may be modified by other virtual threads; never cached
    /// in a register across statements (paper §IV-A).
    pub volatile: bool,
    /// `const`: eligible for the cluster read-only caches.
    pub is_const: bool,
    pub span: Span,
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    pub ret: Type,
    pub params: Vec<Param>,
    pub body: Block,
    pub span: Span,
    /// Set by the outliner on generated spawn functions.
    pub is_outlined: bool,
}

/// A whole XMTC translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub globals: Vec<GlobalDecl>,
    pub functions: Vec<Function>,
}

impl Program {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

/// Walk all statements of a block, depth-first, applying `f` to each.
pub fn walk_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &block.stmts {
        f(s);
        match s {
            Stmt::If { then, els, .. } => {
                walk_stmts(then, f);
                if let Some(e) = els {
                    walk_stmts(e, f);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => walk_stmts(body, f),
            Stmt::For { init, step, body, .. } => {
                if let Some(i) = init {
                    f(i);
                }
                if let Some(st) = step {
                    f(st);
                }
                walk_stmts(body, f);
            }
            Stmt::Spawn { body, .. } => walk_stmts(body, f),
            Stmt::Block(b) => walk_stmts(b, f),
            _ => {}
        }
    }
}
