//! The three-address intermediate representation of the core-pass.
//!
//! Functions are control-flow graphs of basic blocks over virtual
//! registers. A spawn region appears as the [`Term::SpawnStart`]
//! terminator: its serial predecessor computes `lo`/`hi`, the *harness*
//! block allocates virtual-thread ids (the [`Inst::Tid`] pseudo expands
//! to the `ps`/`chkid` protocol of paper §IV-D), the parallel body blocks
//! jump back to the harness when a thread finishes, and the continuation
//! block is where the master resumes after `join`. Blocks carry a
//! `parallel` flag, which the XMT-specific passes and the register
//! allocator consult (parallel code must not spill, §IV-D).

use std::collections::BTreeMap;
use std::fmt;
use xmt_isa::MemoryMap;

/// A virtual register id.
pub type V = u32;
/// A basic-block id (index into `IrFunction::blocks`).
pub type Bb = u32;

/// Register class of a virtual register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    Int,
    Float,
}

/// Integer binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinK {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    /// Arithmetic shift right.
    Sra,
    /// Logical shift right.
    Srl,
    Slt,
    Sltu,
    Seq,
    Sne,
    Sle,
    Sgt,
    Sge,
}

/// Float binary operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FBinK {
    Add,
    Sub,
    Mul,
    Div,
}

/// Float comparisons (produce an int 0/1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FCmpK {
    Eq,
    Lt,
    Le,
}

/// An operand of an integer operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    V(V),
    C(i32),
}

impl Operand {
    /// The virtual register, if any.
    pub fn as_v(self) -> Option<V> {
        match self {
            Operand::V(v) => Some(v),
            Operand::C(_) => None,
        }
    }

    /// The constant, if any.
    pub fn as_c(self) -> Option<i32> {
        match self {
            Operand::C(c) => Some(c),
            Operand::V(_) => None,
        }
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// `d = a op b` (integer).
    Bin { op: BinK, d: V, a: Operand, b: Operand },
    /// `d = a op b` (float).
    FBin { op: FBinK, d: V, a: V, b: V },
    /// Load integer constant.
    Li { d: V, imm: i32 },
    /// Load float constant.
    FLi { d: V, imm: f32 },
    Mov { d: V, s: V },
    FMov { d: V, s: V },
    FNeg { d: V, s: V },
    /// int → float.
    CvtIF { d: V, s: V },
    /// float → int (truncating).
    CvtFI { d: V, s: V },
    /// Float compare into an int register.
    FCmp { op: FCmpK, d: V, a: V, b: V },
    /// Integer word load. `ro` marks read-only-cache eligibility;
    /// `volatile` suppresses CSE.
    Ld { d: V, addr: V, off: i32, ro: bool, volatile: bool },
    FLd { d: V, addr: V, off: i32 },
    /// Integer word store; `nb` = non-blocking.
    St { s: V, addr: V, off: i32, nb: bool },
    FSt { s: V, addr: V, off: i32, nb: bool },
    /// Prefix-sum to memory: `s_d` holds the increment on entry and the
    /// fetched old value afterwards.
    Psm { s_d: V, addr: V, off: i32 },
    /// Prefix-sum on global register `gr` (increment/old value in `s_d`).
    Ps { s_d: V, gr: u8 },
    /// Read a global register (master or TCU; expands to `ps` with 0).
    GrGet { d: V, gr: u8 },
    /// Write a global register (master only).
    GrPut { gr: u8, s: V },
    /// Prefetch into the TCU prefetch buffer.
    Pref { addr: V, off: i32 },
    /// Memory fence.
    Fence,
    /// Serial function call (int/pointer args; optional return value).
    Call { name: String, args: Vec<V>, ret: Option<(V, Class)> },
    Print { s: V },
    PrintF { s: V },
    PrintC { s: V },
    /// Serial bump allocation: `d = alloc(size_bytes)`.
    Alloc { d: V, size: V },
    /// Virtual-thread id allocation (harness block only): expands to
    /// `li d,1; ps d,gr0; chkid d`.
    Tid { d: V },
    /// Address of a global symbol.
    La { d: V, symbol: String },
    /// Address of a serial stack slot.
    SlotAddr { d: V, slot: u32 },
}

impl Inst {
    /// Virtual registers read by this instruction.
    pub fn uses(&self) -> Vec<V> {
        use Inst::*;
        match self {
            Bin { a, b, .. } => a.as_v().into_iter().chain(b.as_v()).collect(),
            FBin { a, b, .. } | FCmp { a, b, .. } => vec![*a, *b],
            Li { .. } | FLi { .. } | Tid { .. } | La { .. } | SlotAddr { .. } | Fence
            | GrGet { .. } => vec![],
            Mov { s, .. } | FMov { s, .. } | FNeg { s, .. } | CvtIF { s, .. }
            | CvtFI { s, .. } | GrPut { s, .. } | Print { s } | PrintF { s } | PrintC { s } => {
                vec![*s]
            }
            Ld { addr, .. } | FLd { addr, .. } | Pref { addr, .. } => vec![*addr],
            St { s, addr, .. } | FSt { s, addr, .. } => vec![*s, *addr],
            Psm { s_d, addr, .. } => vec![*s_d, *addr],
            Ps { s_d, .. } => vec![*s_d],
            Call { args, .. } => args.clone(),
            Alloc { size, .. } => vec![*size],
        }
    }

    /// The virtual register defined by this instruction, if any.
    pub fn def(&self) -> Option<V> {
        use Inst::*;
        match self {
            Bin { d, .. } | FBin { d, .. } | Li { d, .. } | FLi { d, .. } | Mov { d, .. }
            | FMov { d, .. } | FNeg { d, .. } | CvtIF { d, .. } | CvtFI { d, .. }
            | FCmp { d, .. } | Ld { d, .. } | FLd { d, .. } | GrGet { d, .. } | Alloc { d, .. }
            | Tid { d } | La { d, .. } | SlotAddr { d, .. } => Some(*d),
            Psm { s_d, .. } | Ps { s_d, .. } => Some(*s_d),
            Call { ret, .. } => ret.map(|(v, _)| v),
            St { .. } | FSt { .. } | GrPut { .. } | Pref { .. } | Fence | Print { .. }
            | PrintF { .. } | PrintC { .. } => None,
        }
    }

    /// Pure instructions have no side effects and can be removed when
    /// their result is unused, or reused by CSE.
    pub fn is_pure(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Bin { .. }
                | FBin { .. }
                | Li { .. }
                | FLi { .. }
                | Mov { .. }
                | FMov { .. }
                | FNeg { .. }
                | CvtIF { .. }
                | CvtFI { .. }
                | FCmp { .. }
                | La { .. }
                | SlotAddr { .. }
        )
    }

    /// Does this instruction touch memory (or order it, like `fence`)?
    pub fn is_memory(&self) -> bool {
        use Inst::*;
        matches!(
            self,
            Ld { .. }
                | FLd { .. }
                | St { .. }
                | FSt { .. }
                | Psm { .. }
                | Pref { .. }
                | Fence
                | Call { .. }
                | Alloc { .. }
        )
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    Jmp(Bb),
    /// Branch on an int register: nonzero → `t`, zero → `f`.
    Br { cond: V, t: Bb, f: Bb },
    /// Return (register class decides int vs float return slot).
    Ret(Option<V>),
    /// Enter a parallel section (serial block only): `harness` is the
    /// virtual-thread allocation block, `cont` is where the master
    /// resumes after `join`.
    SpawnStart { lo: V, hi: V, harness: Bb, cont: Bb },
    /// Stop the machine (end of `main`).
    Halt,
}

impl Term {
    /// Successor blocks.
    pub fn succs(&self) -> Vec<Bb> {
        match self {
            Term::Jmp(b) => vec![*b],
            Term::Br { t, f, .. } => vec![*t, *f],
            Term::SpawnStart { harness, cont, .. } => vec![*harness, *cont],
            Term::Ret(_) | Term::Halt => vec![],
        }
    }

    /// Virtual registers read by the terminator.
    pub fn uses(&self) -> Vec<V> {
        match self {
            Term::Br { cond, .. } => vec![*cond],
            Term::Ret(Some(v)) => vec![*v],
            Term::SpawnStart { lo, hi, .. } => vec![*lo, *hi],
            _ => vec![],
        }
    }
}

/// One basic block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockIr {
    pub insts: Vec<Inst>,
    pub term: Term,
    /// True for blocks broadcast to and executed by the TCUs.
    pub parallel: bool,
    /// Source line of the statement this block was lowered from
    /// (0 = unknown). Optimization passes keep blocks intact, so this
    /// survives to the code generator, which builds the line table used
    /// to refer hot assembly back to XMTC lines (paper §III-B).
    pub src_line: u32,
}

/// One function in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct IrFunction {
    pub name: String,
    /// Parameter vregs, in ABI order (int/pointer class only).
    pub params: Vec<V>,
    /// Class of each virtual register (indexed by `V`).
    pub vclass: Vec<Class>,
    pub blocks: Vec<BlockIr>,
    pub entry: Bb,
    /// Sizes (bytes, word-aligned) of serial stack slots.
    pub slots: Vec<u32>,
    /// Return class (None = void).
    pub ret: Option<Class>,
    /// Whether this is `main` (ends in halt, gets no ABI prologue).
    pub is_main: bool,
}

impl IrFunction {
    /// Allocate a fresh virtual register of `class`.
    pub fn new_vreg(&mut self, class: Class) -> V {
        self.vclass.push(class);
        (self.vclass.len() - 1) as V
    }

    /// Allocate a fresh empty block; returns its id.
    pub fn new_block(&mut self, parallel: bool) -> Bb {
        self.new_block_at(parallel, 0)
    }

    /// Allocate a fresh empty block stamped with a source line.
    pub fn new_block_at(&mut self, parallel: bool, src_line: u32) -> Bb {
        self.blocks.push(BlockIr {
            insts: Vec::new(),
            term: Term::Halt,
            parallel,
            src_line,
        });
        (self.blocks.len() - 1) as Bb
    }

    /// Does this function contain a parallel region?
    pub fn has_spawn(&self) -> bool {
        self.blocks.iter().any(|b| b.parallel)
    }

    /// Does this function call others (needs `ra` saved)?
    pub fn has_calls(&self) -> bool {
        self.blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Call { .. })))
    }
}

/// Metadata about a lowered global.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalMeta {
    pub addr: u32,
    pub is_const: bool,
    pub volatile: bool,
    /// Float scalars/arrays (for typed reads in tooling).
    pub is_float: bool,
    /// Element count (1 for scalars).
    pub len: u32,
}

/// A whole compilation unit in IR form.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    pub functions: Vec<IrFunction>,
    pub memmap: MemoryMap,
    pub globals: BTreeMap<String, GlobalMeta>,
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for func in &self.functions {
            writeln!(f, "fn {}({:?}):", func.name, func.params)?;
            for (i, b) in func.blocks.iter().enumerate() {
                writeln!(f, "  bb{i}{}:", if b.parallel { " [par]" } else { "" })?;
                for inst in &b.insts {
                    writeln!(f, "    {inst:?}")?;
                }
                writeln!(f, "    {:?}", b.term)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uses_and_defs() {
        let i = Inst::Bin { op: BinK::Add, d: 3, a: Operand::V(1), b: Operand::C(4) };
        assert_eq!(i.uses(), vec![1]);
        assert_eq!(i.def(), Some(3));
        assert!(i.is_pure());

        let st = Inst::St { s: 1, addr: 2, off: 0, nb: false };
        assert_eq!(st.uses(), vec![1, 2]);
        assert_eq!(st.def(), None);
        assert!(!st.is_pure());
        assert!(st.is_memory());

        let psm = Inst::Psm { s_d: 5, addr: 6, off: 0 };
        assert_eq!(psm.uses(), vec![5, 6]);
        assert_eq!(psm.def(), Some(5));
    }

    #[test]
    fn term_successors() {
        assert_eq!(Term::Jmp(3).succs(), vec![3]);
        assert_eq!(Term::Br { cond: 0, t: 1, f: 2 }.succs(), vec![1, 2]);
        assert_eq!(
            Term::SpawnStart { lo: 0, hi: 1, harness: 5, cont: 9 }.succs(),
            vec![5, 9]
        );
        assert!(Term::Halt.succs().is_empty());
    }

    #[test]
    fn function_builders() {
        let mut f = IrFunction {
            name: "t".into(),
            params: vec![],
            vclass: vec![],
            blocks: vec![],
            entry: 0,
            slots: vec![],
            ret: None,
            is_main: false,
        };
        let v0 = f.new_vreg(Class::Int);
        let v1 = f.new_vreg(Class::Float);
        assert_eq!((v0, v1), (0, 1));
        assert_eq!(f.vclass[1], Class::Float);
        let b = f.new_block(true);
        assert!(f.blocks[b as usize].parallel);
        assert!(f.has_spawn());
    }
}
