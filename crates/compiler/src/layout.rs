//! The compiler post-pass: XMT assembly-layout verification and repair
//! (paper §IV-B, Fig. 9).
//!
//! XMT restricts the layout of spawn-block code: because the hardware
//! *broadcasts* the instructions between `spawn` and `join` to the TCUs,
//! every instruction a virtual thread may execute must sit inside that
//! window — TCUs have no access to instructions that were not broadcast.
//! A layout-optimizing code generator (GCC in the paper, our cold-block
//! sinking here) may nevertheless place a basic block that logically
//! belongs to the spawn block *after* the `join` (Fig. 9a). This pass,
//! the counterpart of the paper's SableCC post-pass, finds such misplaced
//! blocks and relocates them back between `spawn` and `join` (Fig. 9b),
//! then verifies the XMT semantic rules.

use std::collections::BTreeMap;
use xmt_isa::{AsmItem, AsmProgram, Instr, Target};

/// Repair misplaced basic blocks. Returns the number of blocks moved.
pub fn fix_layout(asm: &mut AsmProgram) -> Result<u32, String> {
    let mut fixes = 0;
    // Iterate to a fixed point: moving one block can expose another
    // (a misplaced block may branch to a second misplaced block).
    loop {
        let Some((window, target_label)) = find_misplaced(asm)? else {
            return Ok(fixes);
        };
        move_block_into_window(asm, window, &target_label)?;
        fixes += 1;
        if fixes > 10_000 {
            return Err("layout fix did not converge".into());
        }
    }
}

/// A spawn…join window in *item* coordinates: (spawn_item, join_item).
#[derive(Debug, Clone, Copy)]
struct Window {
    spawn: usize,
    join: usize,
}

/// Labels defined at each item index, and per-label item index.
fn label_index(asm: &AsmProgram) -> BTreeMap<String, usize> {
    let mut m = BTreeMap::new();
    for (k, it) in asm.items.iter().enumerate() {
        if let AsmItem::Label(l) = it {
            m.insert(l.clone(), k);
        }
    }
    m
}

fn windows(asm: &AsmProgram) -> Result<Vec<Window>, String> {
    let mut out = Vec::new();
    let mut open: Option<usize> = None;
    for (k, it) in asm.items.iter().enumerate() {
        match it {
            AsmItem::Instr(Instr::Spawn { .. }) => {
                if open.is_some() {
                    return Err(format!("nested spawn at item {k}"));
                }
                open = Some(k);
            }
            AsmItem::Instr(Instr::Join) => {
                let Some(s) = open.take() else {
                    return Err(format!("join without spawn at item {k}"));
                };
                out.push(Window { spawn: s, join: k });
            }
            _ => {}
        }
    }
    if open.is_some() {
        return Err("spawn never joined".into());
    }
    Ok(out)
}

/// Find one branch inside a window whose target label lies outside it.
fn find_misplaced(asm: &AsmProgram) -> Result<Option<(Window, String)>, String> {
    let labels = label_index(asm);
    for w in windows(asm)? {
        for item in &asm.items[w.spawn + 1..w.join] {
            let AsmItem::Instr(ins) = item else { continue };
            if let Some(Target::Label(l)) = ins.target() {
                let Some(&pos) = labels.get(l) else {
                    return Err(format!("undefined label `{l}` in spawn block"));
                };
                if pos <= w.spawn || pos >= w.join {
                    return Ok(Some((w, l.clone())));
                }
            }
        }
    }
    Ok(None)
}

/// Move the block starting at `label` to just before the window's join.
fn move_block_into_window(
    asm: &mut AsmProgram,
    w: Window,
    label: &str,
) -> Result<(), String> {
    let labels = label_index(asm);
    let start = *labels.get(label).expect("label exists");

    // Delimit the block: from its label through its first unconditional
    // transfer. Hitting another label or a spawn/join first means the
    // block falls through — it cannot be moved safely.
    let mut end = None;
    for (k, item) in asm.items.iter().enumerate().skip(start + 1) {
        match item {
            AsmItem::Label(_) => break,
            AsmItem::Comment(_) => {}
            AsmItem::Instr(Instr::Spawn { .. }) | AsmItem::Instr(Instr::Join) => break,
            AsmItem::Instr(i) => {
                if i.is_unconditional_jump() {
                    end = Some(k + 1);
                    break;
                }
            }
        }
    }
    let Some(end) = end else {
        return Err(format!(
            "misplaced block `{label}` does not end in an unconditional jump; \
             cannot relocate it into the spawn block"
        ));
    };

    // The block must not be entered by fallthrough where it is now.
    if start > 0 {
        let mut k = start - 1;
        loop {
            match &asm.items[k] {
                AsmItem::Comment(_) | AsmItem::Label(_) if k > 0 => k -= 1,
                AsmItem::Instr(i) if i.is_unconditional_jump() => break,
                AsmItem::Instr(Instr::Join) => break, // after a join is fine
                _ => {
                    return Err(format!(
                        "misplaced block `{label}` is reachable by fallthrough; \
                         cannot relocate"
                    ))
                }
            }
        }
    }

    // Splice the block out and reinsert before the join (Fig. 9b: the
    // preceding code keeps control flow because the block both starts at
    // a label and ends with a jump).
    let block: Vec<AsmItem> = asm.items.drain(start..end).collect();
    // Removing items before the join shifts its index.
    let join_pos = if start < w.join { w.join - block.len() } else { w.join };
    debug_assert!(matches!(asm.items[join_pos], AsmItem::Instr(Instr::Join)));
    for (off, item) in block.into_iter().enumerate() {
        asm.items.insert(join_pos + off, item);
    }
    Ok(())
}

/// Verify XMT assembly semantics:
///
/// 1. spawn/join are balanced and non-nested;
/// 2. every branch inside a spawn window targets a label inside it;
/// 3. no `spawn`, `halt`, `jal`, `jr`, or `jalr` inside a window
///    (serial-only / call instructions cannot run on TCUs);
/// 4. `chkid` appears only inside windows;
/// 5. no branch from serial code targets the inside of a window.
pub fn verify(asm: &AsmProgram) -> Result<(), String> {
    let labels = label_index(asm);
    let ws = windows(asm)?;
    let inside = |k: usize| ws.iter().any(|w| k > w.spawn && k < w.join);

    for (k, item) in asm.items.iter().enumerate() {
        let AsmItem::Instr(ins) = item else { continue };
        let in_window = inside(k);
        match ins {
            Instr::Halt | Instr::Jal { .. } | Instr::Jr { .. } | Instr::Jalr { .. }
                if in_window =>
            {
                return Err(format!("serial-only instruction `{ins}` inside spawn block"));
            }
            Instr::Grput { .. } if in_window => {
                return Err("`grput` inside spawn block (master-only)".into());
            }
            Instr::Chkid { .. } if !in_window => {
                return Err("`chkid` outside a spawn block".into());
            }
            _ => {}
        }
        if let Some(Target::Label(l)) = ins.target() {
            let Some(&pos) = labels.get(l) else {
                return Err(format!("undefined label `{l}`"));
            };
            let target_in = inside(pos);
            if in_window && !target_in {
                return Err(format!(
                    "branch to `{l}` escapes the spawn block (instructions outside \
                     the spawn…join window are not broadcast to the TCUs)"
                ));
            }
            if !in_window && target_in {
                return Err(format!("serial branch to `{l}` jumps into a spawn block"));
            }
        }
    }
    Ok(())
}

/// Count distinct spawn blocks (for diagnostics/tests).
pub fn spawn_count(asm: &AsmProgram) -> usize {
    asm.instrs()
        .filter(|i| matches!(i, Instr::Spawn { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmt_isa::asm::parse;

    /// Paper Fig. 9a: BB2 belongs to the spawn block but sits after the
    /// return.
    const FIG9A: &str = r"
outl_sp1:
    spawn $a0, $a1
bb1:
    li   $t0, 1
    ps   $t0, gr0
    chkid $t0
    bne  $t0, $zero, bb2
    j    bb1
    join
    jr   $ra
bb2:
    addi $t1, $t1, 1
    j    bb1
";

    #[test]
    fn fig9_block_pulled_back_inside() {
        let mut asm = parse(FIG9A).unwrap();
        assert!(verify(&asm).is_err(), "Fig 9a layout must fail verification");
        let fixes = fix_layout(&mut asm).unwrap();
        assert_eq!(fixes, 1);
        verify(&asm).expect("Fig 9b layout verifies");
        // bb2 now sits before the join.
        let items = &asm.items;
        let join_pos = items
            .iter()
            .position(|i| matches!(i, AsmItem::Instr(Instr::Join)))
            .unwrap();
        let bb2_pos = items
            .iter()
            .position(|i| matches!(i, AsmItem::Label(l) if l == "bb2"))
            .unwrap();
        assert!(bb2_pos < join_pos);
        // Program still links (spawn/join preserved).
        asm.link(xmt_isa::MemoryMap::new()).unwrap();
    }

    #[test]
    fn chained_misplaced_blocks_converge() {
        let src = r"
f:
    spawn $a0, $a1
top:
    li $t0, 1
    ps $t0, gr0
    chkid $t0
    bne $t0, $zero, far1
    j top
    join
    jr $ra
far1:
    bne $t1, $zero, far2
    j top
far2:
    addi $t2, $t2, 1
    j top
";
        let mut asm = parse(src).unwrap();
        let fixes = fix_layout(&mut asm).unwrap();
        assert_eq!(fixes, 2);
        verify(&asm).unwrap();
    }

    #[test]
    fn verify_rejects_serial_only_in_window() {
        let src = "main:\n spawn $a0, $a1\n halt\n join\n halt\n";
        let asm = parse(src).unwrap();
        assert!(verify(&asm).unwrap_err().contains("halt"));
        let src = "main:\n spawn $a0, $a1\n jal main\n join\n halt\n";
        let asm = parse(src).unwrap();
        assert!(verify(&asm).unwrap_err().contains("jal"));
    }

    #[test]
    fn verify_rejects_chkid_outside() {
        let asm = parse("main:\n chkid $t0\n halt\n").unwrap();
        assert!(verify(&asm).unwrap_err().contains("chkid"));
    }

    #[test]
    fn verify_rejects_serial_jump_into_window() {
        let src = r"
main:
    j inside
    spawn $a0, $a1
inside:
    nop
    j inside
    join
    halt
";
        let asm = parse(src).unwrap();
        assert!(verify(&asm).unwrap_err().contains("jumps into"));
    }

    #[test]
    fn fallthrough_block_cannot_move() {
        // The out-of-window target is reachable by fallthrough: error.
        let src = r"
f:
    spawn $a0, $a1
in:
    chkid $t0
    bne $t0, $zero, out
    j in
    join
    addi $t5, $t5, 1
out:
    j in
";
        let mut asm = parse(src).unwrap();
        assert!(fix_layout(&mut asm).is_err());
    }

    #[test]
    fn clean_program_needs_no_fixes() {
        let src = r"
main:
    li $a0, 0
    li $a1, 7
    spawn $a0, $a1
loop:
    li $t0, 1
    ps $t0, gr0
    chkid $t0
    j loop
    join
    halt
";
        let mut asm = parse(src).unwrap();
        assert_eq!(fix_layout(&mut asm).unwrap(), 0);
        verify(&asm).unwrap();
    }
}
