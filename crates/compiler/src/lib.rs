//! # xmtc — the optimizing XMTC compiler
//!
//! A Rust re-implementation of the XMTC compiler of the paper *Toolchain
//! for Programming, Simulating and Studying the XMT Many-Core
//! Architecture* (IPPS 2011, §IV). It translates XMTC — a modest SPMD
//! parallel extension of C with `spawn`, `$`, `ps` and `psm` — into
//! optimized XMT assembly ([`xmt_isa::AsmProgram`]) plus the memory map of
//! the program's globals.
//!
//! The pipeline mirrors the paper's three passes:
//!
//! 1. **pre-pass** (the paper's CIL pass): parsing, semantic checks,
//!    nested-spawn serialization, optional virtual-thread
//!    [`clustering`], and [`outline`]-ing of spawn blocks into fresh
//!    functions — the transformation that protects the serial mid-end
//!    from illegal dataflow across spawn boundaries (paper Fig. 8);
//! 2. **core-pass** (the paper's GCC): lowering to a three-address IR,
//!    scalar optimizations, the XMT-specific optimizations (memory
//!    fences before prefix-sums for the memory model §IV-A, non-blocking
//!    store conversion, prefetch insertion §IV-C), register allocation —
//!    with the paper's *register spill error* for parallel code (§IV-D)
//!    — and code generation including the `ps`/`chkid` virtual-thread
//!    scheduling harness;
//! 3. **post-pass** (the paper's SableCC pass): verification of XMT
//!    assembly semantics and the basic-block [`layout`] fix that pulls
//!    misplaced blocks back between `spawn` and `join` (paper Fig. 9).

pub mod ast;
pub mod clustering;
pub mod inline;
pub mod codegen;
pub mod ir;
pub mod layout;
pub mod lexer;
pub mod lower;
pub mod opt;
pub mod outline;
pub mod parser;
pub mod regalloc;
pub mod sema;

use lexer::Span;
use std::fmt;
use xmt_isa::{AsmProgram, MemoryMap};

/// Compiler options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// 0 = no scalar optimizations, 1 = basic, 2 = full (default).
    pub opt_level: u8,
    /// Outline spawn blocks into fresh functions (default on). Turning
    /// this off reproduces the paper's illegal-dataflow hazards of
    /// Fig. 8 — values written in the spawn block through master
    /// registers are lost.
    pub outline: bool,
    /// Insert memory fences before `ps`/`psm` (the XMT memory model rule
    /// 2 of §IV-A; default on).
    pub fences: bool,
    /// Convert stores in parallel code to non-blocking stores (§IV-C;
    /// default on).
    pub nb_stores: bool,
    /// Insert prefetches to batch independent loads (§IV-C; default on).
    pub prefetch: bool,
    /// Maximum loads batched per prefetch group.
    pub prefetch_batch: u32,
    /// Virtual-thread clustering factor (§IV-C): group this many
    /// fine-grained virtual threads into one longer thread. `None`/1 = off.
    pub clustering: Option<u32>,
    /// Use the cluster read-only caches for loads of `const` globals in
    /// parallel code.
    pub ro_cache_const: bool,
    /// Let the code generator sink cold blocks to the end of functions
    /// (the layout "optimization" that creates the paper's Fig. 9
    /// situation, which the post-pass then repairs).
    pub sink_cold_blocks: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            opt_level: 2,
            outline: true,
            fences: true,
            nb_stores: true,
            prefetch: true,
            prefetch_batch: 8,
            clustering: None,
            ro_cache_const: false,
            sink_cold_blocks: true,
        }
    }
}

impl Options {
    /// Everything off: the naive correctness baseline.
    pub fn o0() -> Self {
        Options {
            opt_level: 0,
            outline: true,
            fences: true,
            nb_stores: false,
            prefetch: false,
            prefetch_batch: 0,
            clustering: None,
            ro_cache_const: false,
            sink_cold_blocks: false,
        }
    }
}

/// Compilation errors.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// Lexical / syntactic error.
    Parse(parser::ParseError),
    /// Semantic (structural) error.
    Sema { message: String, span: Span },
    /// Type error.
    Type { message: String, span: Span },
    /// The paper's §IV-D register-spill error: parallel code has no
    /// stack, so a virtual thread that needs more registers than the TCU
    /// provides cannot be compiled.
    RegisterSpill { function: String, message: String },
    /// Post-pass verification failure (XMT assembly semantics).
    Verify(String),
    /// Internal invariant violation — a compiler bug.
    Internal(String),
}

impl CompileError {
    pub(crate) fn sema(message: impl Into<String>, span: Span) -> Self {
        CompileError::Sema { message: message.into(), span }
    }

    pub(crate) fn ty(message: impl Into<String>, span: Span) -> Self {
        CompileError::Type { message: message.into(), span }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Parse(e) => write!(f, "{e}"),
            CompileError::Sema { message, span } => write!(f, "error at {span}: {message}"),
            CompileError::Type { message, span } => {
                write!(f, "type error at {span}: {message}")
            }
            CompileError::RegisterSpill { function, message } => {
                write!(f, "register spill in parallel code of `{function}`: {message}")
            }
            CompileError::Verify(m) => write!(f, "post-pass verification failed: {m}"),
            CompileError::Internal(m) => write!(f, "internal compiler error: {m}"),
        }
    }
}

impl std::error::Error for CompileError {}

impl From<parser::ParseError> for CompileError {
    fn from(e: parser::ParseError) -> Self {
        CompileError::Parse(e)
    }
}

/// Result of a successful compilation.
#[derive(Debug, Clone)]
pub struct CompileOutput {
    /// The assembly program (link with [`xmt_isa::AsmProgram::link`]).
    pub asm: AsmProgram,
    /// Initial data segment (global variables).
    pub memmap: MemoryMap,
    /// Number of basic blocks the post-pass had to relocate back inside
    /// a spawn…join window (paper Fig. 9).
    pub layout_fixes: u32,
    /// Warnings produced along the way.
    pub warnings: Vec<String>,
    /// Sparse (instruction index → XMTC source line) table; see
    /// [`CompileOutput::source_line_of`].
    pub line_table: Vec<(u32, u32)>,
}

impl CompileOutput {
    /// The XMTC source line an instruction was generated from, if known
    /// (the §III-B workflow: hot assembly lines referred back to source).
    pub fn source_line_of(&self, instr_idx: u32) -> Option<u32> {
        match self.line_table.binary_search_by_key(&instr_idx, |e| e.0) {
            Ok(k) => Some(self.line_table[k].1),
            Err(0) => None,
            Err(k) => Some(self.line_table[k - 1].1),
        }
    }
}

/// Derive the sparse line table from `@line` comment markers.
fn build_line_table(asm: &AsmProgram) -> Vec<(u32, u32)> {
    let mut table = Vec::new();
    let mut idx: u32 = 0;
    let mut cur: Option<u32> = None;
    for item in &asm.items {
        match item {
            xmt_isa::AsmItem::Comment(c) => {
                if let Some(rest) = c.strip_prefix("@line ") {
                    if let Ok(line) = rest.trim().parse::<u32>() {
                        cur = Some(line);
                    }
                }
            }
            xmt_isa::AsmItem::Instr(_) => {
                if let Some(line) = cur.take() {
                    if table.last().map(|&(_, l)| l) != Some(line) {
                        table.push((idx, line));
                    }
                }
                idx += 1;
            }
            xmt_isa::AsmItem::Label(_) => {}
        }
    }
    table
}

impl CompileOutput {
    /// Link into a loadable executable.
    pub fn link(&self) -> Result<xmt_isa::Executable, xmt_isa::LinkError> {
        self.asm.link(self.memmap.clone())
    }
}

/// Compile XMTC source text into XMT assembly.
pub fn compile(source: &str, opts: &Options) -> Result<CompileOutput, CompileError> {
    let mut ast = parser::parse(source)?;
    // Calls inside spawn blocks are inlined (there is no parallel cactus
    // stack in the current release, paper §IV-E).
    inline::inline_parallel_calls(&mut ast)?;
    let mut checked = sema::check(ast)?;
    // Helpers that existed only to be inlined are dead now.
    inline::prune_dead_functions(&mut checked.program);
    let mut warnings = std::mem::take(&mut checked.warnings);

    if let Some(c) = opts.clustering {
        if c > 1 {
            clustering::cluster(&mut checked.program, c);
        }
    }
    if opts.outline {
        outline::outline(&mut checked.program);
    } else {
        warnings.push(
            "outlining disabled: optimizations may perform illegal dataflow across \
             spawn boundaries (paper Fig. 8)"
                .to_string(),
        );
    }

    let mut module = lower::lower(&checked, opts)?;
    opt::optimize(&mut module, opts);
    let mut asm = codegen::emit(&module, opts)?;
    let fixes = layout::fix_layout(&mut asm).map_err(CompileError::Verify)?;
    layout::verify(&asm).map_err(CompileError::Verify)?;
    let line_table = build_line_table(&asm);

    Ok(CompileOutput {
        asm,
        memmap: module.memmap,
        layout_fixes: fixes,
        warnings,
        line_table,
    })
}

/// Convenience: compile with default options.
pub fn compile_default(source: &str) -> Result<CompileOutput, CompileError> {
    compile(source, &Options::default())
}
