//! Structural semantic checks and XMT-specific AST normalization.
//!
//! This pass enforces the XMTC rules of the paper:
//!
//! * `$` is meaningful only inside a spawn block (§II-A);
//! * `ps` operates only on a *limited number of global registers*: every
//!   variable used as a `ps` base is promoted to one of the `gr1..gr7`
//!   global registers, and the program is rejected if it needs more
//!   (§II-A: "it can only be performed over a limited number of global
//!   registers");
//! * nested `spawn`s are serialized — the current XMT release runs inner
//!   spawns as loops (§IV-E) — implemented here as an AST rewrite;
//! * virtual threads cannot `return`, `break` out of the spawn block, or
//!   call user functions (no parallel cactus stack in the current
//!   release, §IV-D/E);
//! * `halt`-style serial-only intrinsics (`alloc`) stay serial (§IV-D:
//!   dynamic memory allocation is currently supported only in serial
//!   code).

use crate::ast::*;
use crate::ast::walk_stmts;
use crate::lexer::Span;
use crate::CompileError;
use std::collections::BTreeMap;
use xmt_isa::GlobalReg;

/// Result of semantic analysis.
#[derive(Debug)]
pub struct Checked {
    /// The (possibly rewritten) program.
    pub program: Program,
    /// Globals promoted to prefix-sum base registers.
    pub ps_bases: BTreeMap<String, GlobalReg>,
    /// Human-readable warnings (e.g. serialized nested spawns).
    pub warnings: Vec<String>,
}

/// Builtin functions recognized by the compiler.
pub const BUILTINS: &[&str] = &["print", "printc", "alloc"];

/// Run semantic analysis and normalization.
pub fn check(mut program: Program) -> Result<Checked, CompileError> {
    let mut warnings = Vec::new();

    // main must exist and take no parameters.
    match program.function("main") {
        None => return Err(CompileError::sema("program has no `main` function", Span::default())),
        Some(m) => {
            if !m.params.is_empty() {
                return Err(CompileError::sema("`main` takes no parameters", m.span));
            }
            if m.ret != Type::Void && m.ret != Type::Int {
                return Err(CompileError::sema("`main` must return void or int", m.span));
            }
        }
    }

    // No duplicate global / function names.
    let mut seen = std::collections::HashSet::new();
    for g in &program.globals {
        if !seen.insert(g.name.clone()) {
            return Err(CompileError::sema(
                format!("duplicate global `{}`", g.name),
                g.span,
            ));
        }
        if g.ty == Type::Void {
            return Err(CompileError::sema("global cannot have type void", g.span));
        }
    }
    for f in &program.functions {
        if !seen.insert(f.name.clone()) {
            return Err(CompileError::sema(
                format!("`{}` defined more than once", f.name),
                f.span,
            ));
        }
        if BUILTINS.contains(&f.name.as_str()) {
            return Err(CompileError::sema(
                format!("`{}` is a builtin and cannot be redefined", f.name),
                f.span,
            ));
        }
    }

    // Serialize nested spawns (AST rewrite), then run the structural
    // walk on the normalized tree.
    let mut ser = Serializer { counter: 0, warnings: &mut warnings };
    for f in &mut program.functions {
        ser.rewrite_block(&mut f.body, false);
    }

    // Structural checks per function.
    for f in &program.functions {
        let mut cx = Walker {
            in_spawn: false,
            loop_depth: 0,
            errors: Vec::new(),
            fn_name: &f.name,
        };
        cx.block(&f.body);
        if let Some(e) = cx.errors.into_iter().next() {
            return Err(e);
        }
    }

    // const globals are read-only after their memory-map initialization
    // (they may be cached in the cluster read-only caches, which have no
    // invalidation path).
    check_const_writes(&program)?;

    // Promote ps bases to global registers.
    let ps_bases = promote_ps_bases(&program)?;

    Ok(Checked { program, ps_bases, warnings })
}

// ---------------------------------------------------------------------
// Nested-spawn serialization
// ---------------------------------------------------------------------

struct Serializer<'a> {
    counter: u32,
    warnings: &'a mut Vec<String>,
}

impl Serializer<'_> {
    fn rewrite_block(&mut self, b: &mut Block, in_spawn: bool) {
        for s in &mut b.stmts {
            self.rewrite_stmt(s, in_spawn);
        }
    }

    fn rewrite_stmt(&mut self, s: &mut Stmt, in_spawn: bool) {
        match s {
            Stmt::Spawn { lo, hi, body, span } => {
                // First normalize anything nested deeper.
                self.rewrite_block(body, true);
                if in_spawn {
                    let k = self.counter;
                    self.counter += 1;
                    self.warnings.push(format!(
                        "nested spawn at {span} serialized (inner spawns run as loops \
                         in the current XMT release)"
                    ));
                    let iv = format!("__ser_i{k}");
                    let hv = format!("__ser_hi{k}");
                    let mut inner = body.clone();
                    subst_dollar(&mut inner, &iv);
                    *s = Stmt::Block(Block {
                        stmts: vec![
                            Stmt::Decl {
                                name: hv.clone(),
                                ty: Type::Int,
                                array: None,
                                init: Some(hi.clone()),
                                span: *span,
                            },
                            Stmt::For {
                                init: Some(Box::new(Stmt::Decl {
                                    name: iv.clone(),
                                    ty: Type::Int,
                                    array: None,
                                    init: Some(lo.clone()),
                                    span: *span,
                                })),
                                cond: Some(Expr::Binary {
                                    op: BinOp::Le,
                                    l: Box::new(Expr::Ident(iv.clone(), *span)),
                                    r: Box::new(Expr::Ident(hv, *span)),
                                }),
                                step: Some(Box::new(Stmt::Assign {
                                    target: Expr::Ident(iv, *span),
                                    op: Some(BinOp::Add),
                                    value: Expr::IntLit(1),
                                    span: *span,
                                })),
                                body: inner,
                            },
                        ],
                    });
                }
            }
            Stmt::If { then, els, .. } => {
                self.rewrite_block(then, in_spawn);
                if let Some(e) = els {
                    self.rewrite_block(e, in_spawn);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                self.rewrite_block(body, in_spawn)
            }
            Stmt::For { init, step, body, .. } => {
                if let Some(i) = init {
                    self.rewrite_stmt(i, in_spawn);
                }
                if let Some(st) = step {
                    self.rewrite_stmt(st, in_spawn);
                }
                self.rewrite_block(body, in_spawn);
            }
            Stmt::Block(b) => self.rewrite_block(b, in_spawn),
            _ => {}
        }
    }
}

/// Replace `$` with a named variable throughout a block (used when
/// serializing nested spawns and by thread clustering).
pub fn subst_dollar(b: &mut Block, var: &str) {
    for s in &mut b.stmts {
        subst_dollar_stmt(s, var);
    }
}

fn subst_dollar_stmt(s: &mut Stmt, var: &str) {
    match s {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                subst_dollar_expr(e, var);
            }
        }
        Stmt::Assign { target, value, .. } => {
            subst_dollar_expr(target, var);
            subst_dollar_expr(value, var);
        }
        Stmt::If { cond, then, els } => {
            subst_dollar_expr(cond, var);
            subst_dollar(then, var);
            if let Some(e) = els {
                subst_dollar(e, var);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            subst_dollar_expr(cond, var);
            subst_dollar(body, var);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                subst_dollar_stmt(i, var);
            }
            if let Some(c) = cond {
                subst_dollar_expr(c, var);
            }
            if let Some(st) = step {
                subst_dollar_stmt(st, var);
            }
            subst_dollar(body, var);
        }
        Stmt::Return(Some(e), _) => subst_dollar_expr(e, var),
        Stmt::Expr(e) => subst_dollar_expr(e, var),
        // An inner spawn re-binds `$`; don't substitute into it.
        Stmt::Spawn { lo, hi, .. } => {
            subst_dollar_expr(lo, var);
            subst_dollar_expr(hi, var);
        }
        Stmt::Block(b) => subst_dollar(b, var),
        _ => {}
    }
}

fn subst_dollar_expr(e: &mut Expr, var: &str) {
    match e {
        Expr::Dollar(span) => *e = Expr::Ident(var.to_string(), *span),
        Expr::Unary { e, .. } | Expr::Deref(e) | Expr::AddrOf(e, _) | Expr::Cast { e, .. } => {
            subst_dollar_expr(e, var)
        }
        Expr::Binary { l, r, .. } => {
            subst_dollar_expr(l, var);
            subst_dollar_expr(r, var);
        }
        Expr::Ternary { c, t, e } => {
            subst_dollar_expr(c, var);
            subst_dollar_expr(t, var);
            subst_dollar_expr(e, var);
        }
        Expr::Index { base, idx } => {
            subst_dollar_expr(base, var);
            subst_dollar_expr(idx, var);
        }
        Expr::Call { args, .. } => {
            for a in args {
                subst_dollar_expr(a, var);
            }
        }
        Expr::Ps { local, base, .. } => {
            subst_dollar_expr(local, var);
            subst_dollar_expr(base, var);
        }
        Expr::Psm { local, target, .. } => {
            subst_dollar_expr(local, var);
            subst_dollar_expr(target, var);
        }
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Structural walk
// ---------------------------------------------------------------------

struct Walker<'a> {
    in_spawn: bool,
    loop_depth: u32,
    errors: Vec<CompileError>,
    fn_name: &'a str,
}

impl Walker<'_> {
    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { init, array, span, .. } => {
                if array.is_some() && self.in_spawn {
                    self.errors.push(CompileError::sema(
                        "local arrays are not allowed in spawn blocks (virtual threads \
                         have no stack in the current XMT release)",
                        *span,
                    ));
                }
                if let Some(e) = init {
                    self.expr(e);
                }
            }
            Stmt::Assign { target, value, .. } => {
                self.expr(target);
                self.expr(value);
            }
            Stmt::If { cond, then, els } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = els {
                    self.block(e);
                }
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                self.expr(cond);
                self.loop_depth += 1;
                self.block(body);
                self.loop_depth -= 1;
            }
            Stmt::For { init, cond, step, body } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.loop_depth += 1;
                self.block(body);
                self.loop_depth -= 1;
            }
            Stmt::Break(span) | Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    self.errors.push(CompileError::sema(
                        if self.in_spawn {
                            "break/continue cannot leave a spawn block"
                        } else {
                            "break/continue outside a loop"
                        },
                        *span,
                    ));
                }
            }
            Stmt::Return(e, span) => {
                if self.in_spawn {
                    self.errors.push(CompileError::sema(
                        "return is not allowed inside a spawn block (the spawn is an \
                         implicit synchronization point)",
                        *span,
                    ));
                }
                if let Some(e) = e {
                    self.expr(e);
                }
            }
            Stmt::Expr(e) => self.expr(e),
            Stmt::Spawn { lo, hi, body, span } => {
                // Nested spawns were serialized before this walk.
                assert!(!self.in_spawn, "nested spawn survived serialization");
                if self.fn_name != "main" && !self.fn_name.starts_with("__outl") {
                    // Allowed anywhere serial; nothing to check here
                    // beyond expression validity.
                }
                let _ = span;
                self.expr(lo);
                self.expr(hi);
                let saved_depth = self.loop_depth;
                self.in_spawn = true;
                self.loop_depth = 0;
                self.block(body);
                self.in_spawn = false;
                self.loop_depth = saved_depth;
            }
            Stmt::Block(b) => self.block(b),
            Stmt::Empty => {}
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Dollar(span)
                if !self.in_spawn => {
                    self.errors.push(CompileError::sema(
                        "`$` is only meaningful inside a spawn block",
                        *span,
                    ));
                }
            Expr::Call { name, args, span } => {
                if self.in_spawn {
                    let ok_in_spawn = matches!(name.as_str(), "print" | "printc");
                    if !ok_in_spawn {
                        self.errors.push(CompileError::sema(
                            format!(
                                "call to `{name}` inside a spawn block: user functions \
                                 are inlined here (no parallel cactus stack yet, paper \
                                 §IV-E) — `{name}` is undefined or a serial-only builtin"
                            ),
                            *span,
                        ));
                    }
                }
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Unary { e, .. } | Expr::Deref(e) | Expr::Cast { e, .. } => self.expr(e),
            Expr::AddrOf(e, _) => self.expr(e),
            Expr::Binary { l, r, .. } => {
                self.expr(l);
                self.expr(r);
            }
            Expr::Ternary { c, t, e } => {
                self.expr(c);
                self.expr(t);
                self.expr(e);
            }
            Expr::Index { base, idx } => {
                self.expr(base);
                self.expr(idx);
            }
            Expr::Ps { local, base, .. } => {
                self.expr(local);
                self.expr(base);
            }
            Expr::Psm { local, target, .. } => {
                self.expr(local);
                self.expr(target);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------
// const-global write checks
// ---------------------------------------------------------------------

fn check_const_writes(program: &Program) -> Result<(), CompileError> {
    use std::collections::HashSet;
    let consts: HashSet<&str> = program
        .globals
        .iter()
        .filter(|g| g.is_const)
        .map(|g| g.name.as_str())
        .collect();
    if consts.is_empty() {
        return Ok(());
    }
    let mut err: Option<CompileError> = None;
    // A write target rooted at a const global: `T = ..`, `T[i] = ..`.
    let root_const = |e: &Expr| -> Option<(String, Span)> {
        let mut cur = e;
        loop {
            match cur {
                Expr::Ident(n, sp) if consts.contains(n.as_str()) => {
                    return Some((n.clone(), *sp))
                }
                Expr::Index { base, .. } => cur = base,
                _ => return None,
            }
        }
    };
    for f in &program.functions {
        let mut visit_stmt = |s: &Stmt| {
            if err.is_some() {
                return;
            }
            if let Stmt::Assign { target, span, .. } = s {
                if let Some((name, _)) = root_const(target) {
                    err = Some(CompileError::sema(
                        format!("cannot assign to const global `{name}`"),
                        *span,
                    ));
                }
            }
        };
        walk_stmts(&f.body, &mut visit_stmt);
        if err.is_some() {
            break;
        }
        // psm targets and address-taking are writes too.
        walk_exprs(&f.body, &mut |e| {
            if err.is_some() {
                return;
            }
            match e {
                Expr::Psm { target, span, .. } => {
                    if let Some((name, _)) = root_const(target) {
                        err = Some(CompileError::sema(
                            format!("psm target `{name}` is const"),
                            *span,
                        ));
                    }
                }
                Expr::AddrOf(inner, span) => {
                    if let Some((name, _)) = root_const(inner) {
                        err = Some(CompileError::sema(
                            format!(
                                "cannot take the address of const global `{name}` \
                                 (it may live in the read-only caches)"
                            ),
                            *span,
                        ));
                    }
                }
                _ => {}
            }
        });
        if err.is_some() {
            break;
        }
    }
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

// ---------------------------------------------------------------------
// ps-base promotion
// ---------------------------------------------------------------------

fn promote_ps_bases(program: &Program) -> Result<BTreeMap<String, GlobalReg>, CompileError> {
    // Collect base names in program order.
    let mut bases: Vec<(String, Span)> = Vec::new();
    let mut err: Option<CompileError> = None;
    let mut visit = |e: &Expr| {
        if let Expr::Ps { base, span, .. } = e {
            match base.as_ref() {
                Expr::Ident(name, _) => {
                    if !bases.iter().any(|(n, _)| n == name) {
                        bases.push((name.clone(), *span));
                    }
                }
                _ => {
                    if err.is_none() {
                        err = Some(CompileError::sema(
                            "the base of `ps` must be a named global variable (it is \
                             allocated to a hardware global register)",
                            *span,
                        ));
                    }
                }
            }
        }
    };
    for f in &program.functions {
        walk_exprs(&f.body, &mut visit);
    }
    if let Some(e) = err {
        return Err(e);
    }

    let mut map = BTreeMap::new();
    for (k, (name, span)) in bases.iter().enumerate() {
        // gr0 is reserved for thread allocation.
        if k + 1 >= GlobalReg::COUNT as usize {
            return Err(CompileError::sema(
                format!(
                    "too many distinct ps bases: the hardware has only {} global \
                     registers (gr1..gr{}); use psm for the rest",
                    GlobalReg::COUNT - 1,
                    GlobalReg::COUNT - 1
                ),
                *span,
            ));
        }
        let g = program.globals.iter().find(|g| &g.name == name).ok_or_else(|| {
            CompileError::sema(
                format!("ps base `{name}` must be a global variable"),
                *span,
            )
        })?;
        if g.ty != Type::Int || g.array.is_some() {
            return Err(CompileError::sema(
                format!("ps base `{name}` must be a scalar int"),
                *span,
            ));
        }
        if g.volatile || g.is_const {
            return Err(CompileError::sema(
                format!("ps base `{name}` cannot be volatile or const"),
                *span,
            ));
        }
        map.insert(name.clone(), GlobalReg(k as u8 + 1));
    }

    // A promoted base must not have its address taken, be a psm target,
    // or be assigned inside a spawn block.
    if !map.is_empty() {
        let mut err: Option<CompileError> = None;
        for f in &program.functions {
            check_base_usage(&f.body, &map, false, &mut err);
        }
        if let Some(e) = err {
            return Err(e);
        }
    }
    Ok(map)
}

fn check_base_usage(
    b: &Block,
    bases: &BTreeMap<String, GlobalReg>,
    in_spawn: bool,
    err: &mut Option<CompileError>,
) {
    for s in &b.stmts {
        check_base_stmt(s, bases, in_spawn, err);
    }
}

fn check_base_stmt(
    s: &Stmt,
    bases: &BTreeMap<String, GlobalReg>,
    in_spawn: bool,
    err: &mut Option<CompileError>,
) {
    match s {
        Stmt::Assign { target, value, span, .. } => {
            if let Expr::Ident(n, _) = target {
                if bases.contains_key(n) && in_spawn && err.is_none() {
                    *err = Some(CompileError::sema(
                        format!(
                            "ps base `{n}` cannot be assigned inside a spawn block; \
                             virtual threads coordinate over it with ps only"
                        ),
                        *span,
                    ));
                }
            }
            check_base_expr(target, bases, err);
            check_base_expr(value, bases, err);
        }
        Stmt::Spawn { body, lo, hi, .. } => {
            check_base_expr(lo, bases, err);
            check_base_expr(hi, bases, err);
            check_base_usage(body, bases, true, err);
        }
        Stmt::If { cond, then, els } => {
            check_base_expr(cond, bases, err);
            check_base_usage(then, bases, in_spawn, err);
            if let Some(e) = els {
                check_base_usage(e, bases, in_spawn, err);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            check_base_expr(cond, bases, err);
            check_base_usage(body, bases, in_spawn, err);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                check_base_stmt(i, bases, in_spawn, err);
            }
            if let Some(c) = cond {
                check_base_expr(c, bases, err);
            }
            if let Some(st) = step {
                check_base_stmt(st, bases, in_spawn, err);
            }
            check_base_usage(body, bases, in_spawn, err);
        }
        Stmt::Decl { init: Some(e), .. } | Stmt::Return(Some(e), _) | Stmt::Expr(e) => {
            check_base_expr(e, bases, err)
        }
        Stmt::Block(b) => check_base_usage(b, bases, in_spawn, err),
        _ => {}
    }
}

/// Expression-level ps-base misuse checks (address-of, psm target).
fn check_base_expr(
    e: &Expr,
    bases: &BTreeMap<String, GlobalReg>,
    err: &mut Option<CompileError>,
) {
    walk_expr(e, &mut |e| match e {
        Expr::AddrOf(inner, span) => {
            if let Expr::Ident(n, _) = inner.as_ref() {
                if bases.contains_key(n) && err.is_none() {
                    *err = Some(CompileError::sema(
                        format!(
                            "cannot take the address of ps base `{n}` \
                             (it lives in a global register, not memory)"
                        ),
                        *span,
                    ));
                }
            }
        }
        Expr::Psm { target, span, .. } => {
            if let Expr::Ident(n, _) = target.as_ref() {
                if bases.contains_key(n) && err.is_none() {
                    *err = Some(CompileError::sema(
                        format!("`{n}` is a ps base (global register); use ps, not psm"),
                        *span,
                    ));
                }
            }
        }
        _ => {}
    });
}

/// Walk every expression in a block.
pub fn walk_exprs(b: &Block, f: &mut impl FnMut(&Expr)) {
    for s in &b.stmts {
        walk_exprs_stmt(s, f);
    }
}

fn walk_exprs_stmt(s: &Stmt, f: &mut impl FnMut(&Expr)) {
    match s {
        Stmt::Decl { init: Some(e), .. } | Stmt::Return(Some(e), _) | Stmt::Expr(e) => {
            walk_expr(e, f)
        }
        Stmt::Assign { target, value, .. } => {
            walk_expr(target, f);
            walk_expr(value, f);
        }
        Stmt::If { cond, then, els } => {
            walk_expr(cond, f);
            walk_exprs(then, f);
            if let Some(e) = els {
                walk_exprs(e, f);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            walk_expr(cond, f);
            walk_exprs(body, f);
        }
        Stmt::For { init, cond, step, body } => {
            if let Some(i) = init {
                walk_exprs_stmt(i, f);
            }
            if let Some(c) = cond {
                walk_expr(c, f);
            }
            if let Some(st) = step {
                walk_exprs_stmt(st, f);
            }
            walk_exprs(body, f);
        }
        Stmt::Spawn { lo, hi, body, .. } => {
            walk_expr(lo, f);
            walk_expr(hi, f);
            walk_exprs(body, f);
        }
        Stmt::Block(b) => walk_exprs(b, f),
        _ => {}
    }
}

/// Walk an expression tree.
pub fn walk_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Unary { e, .. } | Expr::Deref(e) | Expr::AddrOf(e, _) | Expr::Cast { e, .. } => {
            walk_expr(e, f)
        }
        Expr::Binary { l, r, .. } => {
            walk_expr(l, f);
            walk_expr(r, f);
        }
        Expr::Ternary { c, t, e } => {
            walk_expr(c, f);
            walk_expr(t, f);
            walk_expr(e, f);
        }
        Expr::Index { base, idx } => {
            walk_expr(base, f);
            walk_expr(idx, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, f);
            }
        }
        Expr::Ps { local, base, .. } => {
            walk_expr(local, f);
            walk_expr(base, f);
        }
        Expr::Psm { local, target, .. } => {
            walk_expr(local, f);
            walk_expr(target, f);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn check_src(src: &str) -> Result<Checked, CompileError> {
        check(parse(src).unwrap())
    }

    #[test]
    fn fig2a_promotes_base() {
        let c = check_src(
            "int A[8]; int B[8]; int base = 0; int N = 8;
             void main() { spawn(0, N-1) { int inc = 1;
                 if (A[$] != 0) { ps(inc, base); B[inc] = A[$]; } } }",
        )
        .unwrap();
        assert_eq!(c.ps_bases.get("base"), Some(&GlobalReg(1)));
    }

    #[test]
    fn dollar_outside_spawn_rejected() {
        let err = check_src("void main() { int x = $; }").unwrap_err();
        assert!(err.to_string().contains("spawn"));
    }

    #[test]
    fn return_and_call_in_spawn_rejected() {
        let err = check_src("void main() { spawn(0, 3) { return; } }").unwrap_err();
        assert!(err.to_string().contains("return"));
        // An *undefined* function in a spawn block (defined user
        // functions are inlined by the pre-pass before this check).
        let err = check_src(
            "void main() { spawn(0, 3) { int x = undefined_fn(); } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("cactus"));
        // print is fine in parallel code.
        check_src("void main() { spawn(0, 3) { print($); } }").unwrap();
    }

    #[test]
    fn break_inside_spawn_loop_ok_but_not_out_of_spawn() {
        check_src("void main() { spawn(0,3) { while (1) { break; } } }").unwrap();
        let err = check_src("void main() { while (1) { spawn(0,3) { break; } } }").unwrap_err();
        assert!(err.to_string().contains("spawn block"));
    }

    #[test]
    fn nested_spawn_serialized_with_warning() {
        let c = check_src(
            "int A[16];
             void main() { spawn(0, 3) { spawn(0, 3) { A[4 * 0 + $] = $; } } }",
        )
        .unwrap();
        assert_eq!(c.warnings.len(), 1);
        assert!(c.warnings[0].contains("serialized"));
        // The inner spawn is now a for loop.
        let main = c.program.function("main").unwrap();
        let Stmt::Spawn { body, .. } = &main.body.stmts[0] else { panic!() };
        assert!(matches!(body.stmts[0], Stmt::Block(_)));
    }

    #[test]
    fn too_many_ps_bases_rejected() {
        let mut src = String::new();
        for k in 0..8 {
            src.push_str(&format!("int b{k};"));
        }
        src.push_str("void main() { int v = 1; spawn(0,3) {");
        for k in 0..8 {
            src.push_str(&format!("ps(v, b{k});"));
        }
        src.push_str("} }");
        let err = check_src(&src).unwrap_err();
        assert!(err.to_string().contains("global registers"));
    }

    #[test]
    fn ps_base_restrictions() {
        let err =
            check_src("int b; void main() { int v = 1; ps(v, b); int* p = &b; }").unwrap_err();
        assert!(err.to_string().contains("address"));
        let err = check_src(
            "int b; void main() { int v=1; ps(v, b); spawn(0,3) { b = 2; } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("assigned inside"));
        let err = check_src("volatile int b; void main() { int v=1; ps(v, b); }").unwrap_err();
        assert!(err.to_string().contains("volatile"));
        let err = check_src("void main() { int v=1; int b; ps(v, b); }").unwrap_err();
        assert!(err.to_string().contains("global"));
    }

    #[test]
    fn local_array_in_spawn_rejected() {
        let err = check_src("void main() { spawn(0,3) { int t[4]; } }").unwrap_err();
        assert!(err.to_string().contains("no stack"));
        // Serial local arrays are fine.
        check_src("void main() { int t[4]; t[0] = 1; }").unwrap();
    }

    #[test]
    fn missing_main_rejected() {
        let err = check_src("int x;").unwrap_err();
        assert!(err.to_string().contains("main"));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(check_src("int x; int x; void main() {}").is_err());
        assert!(check_src("void f() {} void f() {} void main() {}").is_err());
        assert!(check_src("void print() {} void main() {}").is_err());
    }
}

#[cfg(test)]
mod const_tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn const_global_writes_rejected() {
        let err = check(parse("const int T[4]; void main() { T[0] = 1; }").unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("const"));
        let err = check(parse("const int c = 1; void main() { c += 2; }").unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("const"));
        let err = check(parse(
            "const int T[4]; void main() { int one = 1; psm(one, T[2]); }",
        ).unwrap())
        .unwrap_err();
        assert!(err.to_string().contains("const"));
        let err = check(parse("const int c = 1; void main() { int* p = &c; *p = 2; }").unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("address"));
        // Reading const globals is fine, including in parallel code.
        check(parse(
            "const int T[4]; int O[8]; void main() { spawn(0,7) { O[$] = T[$ % 4]; } }",
        ).unwrap())
        .unwrap();
    }
}
