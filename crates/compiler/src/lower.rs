//! Lowering from the checked AST to the three-address IR, with type
//! checking.
//!
//! Scalar locals live in virtual registers; address-taken locals and
//! local arrays get serial stack slots (the Master TCU has a stack;
//! virtual threads do not — paper §IV-D — so parallel code that would
//! need a slot is rejected). Globals live in the data segment, except
//! `ps` bases, which are allocated to hardware global registers by the
//! semantic pass. A `spawn` lowers to the [`crate::ir::Term::SpawnStart`]
//! region with an explicit harness block holding the `Tid` pseudo
//! (the `ps`/`chkid` virtual-thread allocation protocol).

use crate::ast::{self, BinOp, Block, Expr, GlobalInit, Stmt, UnOp};
use crate::ir::*;
use crate::lexer::Span;
use crate::sema::{walk_exprs, Checked};
use crate::{CompileError, Options};
use std::collections::{BTreeMap, HashMap, HashSet};
use xmt_isa::MemoryMap;

/// Lower a checked program into an IR module.
pub fn lower(checked: &Checked, opts: &Options) -> Result<Module, CompileError> {
    // ---- globals: assign data-segment addresses ----
    let mut memmap = MemoryMap::new();
    let mut gmeta = BTreeMap::new();
    let mut ginfo: HashMap<String, GInfo> = HashMap::new();
    let mut ps_inits: Vec<(u8, i32)> = Vec::new();

    for g in &checked.program.globals {
        if let Some(gr) = checked.ps_bases.get(&g.name) {
            // Lives in a global register; initialize at main entry.
            if let Some(GlobalInit::Scalar(v)) = &g.init {
                if *v != 0.0 {
                    ps_inits.push((gr.0, *v as i32));
                }
            }
            ginfo.insert(
                g.name.clone(),
                GInfo { elem: g.ty.clone(), is_array: false, volatile: false,
                        is_const: false, ps_base: Some(gr.0) },
            );
            continue;
        }
        let len = g.array.unwrap_or(1).max(1);
        let is_float = g.ty == ast::Type::Float;
        let mut words = vec![0u32; len as usize];
        match &g.init {
            Some(GlobalInit::Scalar(v)) => {
                words[0] = encode(*v, is_float);
            }
            Some(GlobalInit::List(vals)) => {
                if vals.len() > len as usize {
                    return Err(CompileError::ty(
                        format!("initializer for `{}` has too many elements", g.name),
                        g.span,
                    ));
                }
                for (k, v) in vals.iter().enumerate() {
                    words[k] = encode(*v, is_float);
                }
            }
            None => {}
        }
        let addr = memmap.push(g.name.clone(), words);
        gmeta.insert(
            g.name.clone(),
            GlobalMeta { addr, is_const: g.is_const, volatile: g.volatile, is_float, len },
        );
        ginfo.insert(
            g.name.clone(),
            GInfo {
                elem: g.ty.clone(),
                is_array: g.array.is_some(),
                volatile: g.volatile,
                is_const: g.is_const,
                ps_base: None,
            },
        );
    }

    // ---- function signatures ----
    let mut sigs: HashMap<String, Sig> = HashMap::new();
    for f in &checked.program.functions {
        for p in &f.params {
            if p.ty == ast::Type::Float {
                return Err(CompileError::ty(
                    format!("float parameter `{}`: pass a float* instead", p.name),
                    p.span,
                ));
            }
            if p.ty == ast::Type::Void {
                return Err(CompileError::ty("void parameter", p.span));
            }
        }
        sigs.insert(
            f.name.clone(),
            Sig { ret: f.ret.clone(), params: f.params.iter().map(|p| p.ty.clone()).collect() },
        );
    }

    // ---- lower each function ----
    let mut functions = Vec::new();
    for f in &checked.program.functions {
        let fun = FnLower::run(f, &ginfo, &sigs, opts, if f.name == "main" { &ps_inits } else { &[] })?;
        functions.push(fun);
    }

    Ok(Module { functions, memmap, globals: gmeta })
}

fn encode(v: f64, is_float: bool) -> u32 {
    if is_float {
        (v as f32).to_bits()
    } else {
        (v as i64) as u32
    }
}

#[derive(Debug, Clone)]
struct GInfo {
    elem: ast::Type,
    is_array: bool,
    volatile: bool,
    is_const: bool,
    ps_base: Option<u8>,
}

#[derive(Debug, Clone)]
struct Sig {
    ret: ast::Type,
    params: Vec<ast::Type>,
}

/// Where a name lives.
#[derive(Debug, Clone)]
enum Binding {
    Reg { v: V, ty: ast::Type },
    Slot { slot: u32, ty: ast::Type, is_array: bool },
}

/// An lvalue, resolved.
enum Place {
    Reg { v: V, ty: ast::Type },
    Mem { addr: V, off: i32, ty: ast::Type, volatile: bool, ro: bool },
    Gr { gr: u8 },
}

struct FnLower<'a> {
    f: IrFunction,
    scopes: Vec<HashMap<String, Binding>>,
    globals: &'a HashMap<String, GInfo>,
    sigs: &'a HashMap<String, Sig>,
    opts: &'a Options,
    cur: Bb,
    breaks: Vec<Bb>,
    continues: Vec<Bb>,
    in_par: bool,
    tid: Option<V>,
    addressed: HashSet<String>,
    /// Whether the current block received an explicit terminator.
    terminated_explicitly: bool,
    /// Source line of the statement currently being lowered.
    cur_line: u32,
}

impl<'a> FnLower<'a> {
    fn run(
        src: &ast::Function,
        globals: &'a HashMap<String, GInfo>,
        sigs: &'a HashMap<String, Sig>,
        opts: &'a Options,
        ps_inits: &[(u8, i32)],
    ) -> Result<IrFunction, CompileError> {
        let is_main = src.name == "main";
        let mut f = IrFunction {
            name: src.name.clone(),
            params: Vec::new(),
            vclass: Vec::new(),
            blocks: Vec::new(),
            entry: 0,
            slots: Vec::new(),
            ret: match src.ret {
                ast::Type::Void => None,
                ast::Type::Float => Some(Class::Float),
                _ => Some(Class::Int),
            },
            is_main,
        };
        let entry = f.new_block_at(false, src.span.line);
        f.entry = entry;

        // Which locals have their address taken anywhere in the function?
        let mut addressed = HashSet::new();
        walk_exprs(&src.body, &mut |e| {
            if let Expr::AddrOf(inner, _) = e {
                if let Expr::Ident(n, _) = inner.as_ref() {
                    addressed.insert(n.clone());
                }
            }
        });

        let mut lw = FnLower {
            f,
            scopes: vec![HashMap::new()],
            globals,
            sigs,
            opts,
            cur: entry,
            breaks: Vec::new(),
            continues: Vec::new(),
            in_par: false,
            tid: None,
            addressed,
            terminated_explicitly: false,
            cur_line: src.span.line,
        };

        // Parameters: int/pointer class virtual registers.
        for p in &src.params {
            let v = lw.f.new_vreg(Class::Int);
            lw.f.params.push(v);
            if lw.addressed.contains(&p.name) {
                // Address-taken parameter: copy into a slot.
                let slot = lw.new_slot(4);
                let a = lw.f.new_vreg(Class::Int);
                lw.push(Inst::SlotAddr { d: a, slot });
                lw.push(Inst::St { s: v, addr: a, off: 0, nb: false });
                lw.bind(&p.name, Binding::Slot { slot, ty: p.ty.clone(), is_array: false });
            } else {
                lw.bind(&p.name, Binding::Reg { v, ty: p.ty.clone() });
            }
        }

        // main: initialize ps-base registers from their initializers.
        for (gr, val) in ps_inits {
            let v = lw.f.new_vreg(Class::Int);
            lw.push(Inst::Li { d: v, imm: *val });
            lw.push(Inst::GrPut { gr: *gr, s: v });
        }

        lw.block(&src.body)?;

        // Implicit function end.
        let end_term = if is_main { Term::Halt } else { Term::Ret(None) };
        if !lw.terminated() {
            lw.set_term(end_term);
        }
        Ok(lw.f)
    }

    // ---------------- infrastructure ----------------

    fn push(&mut self, i: Inst) {
        self.f.blocks[self.cur as usize].insts.push(i);
    }

    /// Whether the current block already received a real terminator.
    fn terminated(&self) -> bool {
        !matches!(self.f.blocks[self.cur as usize].term, Term::Halt)
            || self.terminated_explicitly
    }

    fn set_term(&mut self, t: Term) {
        self.f.blocks[self.cur as usize].term = t;
        self.terminated_explicitly = true;
    }

    fn start_block(&mut self, b: Bb) {
        self.cur = b;
        self.terminated_explicitly = false;
    }

    fn new_block(&mut self) -> Bb {
        // Blocks are stamped lazily by the first statement lowered into
        // them (stmt()); a block created mid-statement inherits nothing
        // and resolves through the previous marker in the line table.
        self.f.new_block(self.in_par)
    }

    fn new_slot(&mut self, bytes: u32) -> u32 {
        self.f.slots.push(bytes.div_ceil(4) * 4);
        (self.f.slots.len() - 1) as u32
    }

    fn vint(&mut self) -> V {
        self.f.new_vreg(Class::Int)
    }

    fn vfloat(&mut self) -> V {
        self.f.new_vreg(Class::Float)
    }

    fn bind(&mut self, name: &str, b: Binding) {
        self.scopes.last_mut().unwrap().insert(name.to_string(), b);
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    // ---------------- statements ----------------

    fn block(&mut self, b: &Block) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            if self.terminated() {
                break; // unreachable code after return/break
            }
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), CompileError> {
        if let Some(line) = stmt_line(s) {
            self.cur_line = line;
            let b = &mut self.f.blocks[self.cur as usize];
            if b.src_line == 0 {
                b.src_line = line;
            }
        }
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Block(b) => self.block(b),
            Stmt::Decl { name, ty, array, init, span } => self.decl(name, ty, *array, init, *span),
            Stmt::Assign { target, op, value, span } => self.assign(target, *op, value, *span),
            Stmt::Expr(e) => {
                self.rv_allow_void(e)?;
                Ok(())
            }
            Stmt::If { cond, then, els } => self.if_stmt(cond, then, els.as_ref()),
            Stmt::While { cond, body } => self.while_stmt(cond, body),
            Stmt::DoWhile { body, cond } => self.do_while(body, cond),
            Stmt::For { init, cond, step, body } => self.for_stmt(init, cond, step, body),
            Stmt::Break(span) => {
                let Some(target) = self.breaks.last().copied() else {
                    return Err(CompileError::sema("break outside loop", *span));
                };
                self.set_term(Term::Jmp(target));
                Ok(())
            }
            Stmt::Continue(span) => {
                let Some(target) = self.continues.last().copied() else {
                    return Err(CompileError::sema("continue outside loop", *span));
                };
                self.set_term(Term::Jmp(target));
                Ok(())
            }
            Stmt::Return(e, span) => self.ret(e.as_ref(), *span),
            Stmt::Spawn { lo, hi, body, span } => self.spawn(lo, hi, body, *span),
        }
    }

    fn decl(
        &mut self,
        name: &str,
        ty: &ast::Type,
        array: Option<u32>,
        init: &Option<Expr>,
        span: Span,
    ) -> Result<(), CompileError> {
        if *ty == ast::Type::Void {
            return Err(CompileError::ty("variable cannot be void", span));
        }
        if let Some(n) = array {
            // Local array: serial stack slot (sema rejects in spawn).
            debug_assert!(!self.in_par);
            let slot = self.new_slot(n.max(1) * 4);
            self.bind(name, Binding::Slot { slot, ty: ty.clone(), is_array: true });
            if init.is_some() {
                return Err(CompileError::ty("local array initializers not supported", span));
            }
            return Ok(());
        }
        if self.addressed.contains(name) {
            if self.in_par {
                return Err(CompileError::sema(
                    format!(
                        "cannot take the address of `{name}` in a spawn block: virtual \
                         threads have no stack (paper §IV-D)"
                    ),
                    span,
                ));
            }
            let slot = self.new_slot(4);
            self.bind(name, Binding::Slot { slot, ty: ty.clone(), is_array: false });
            if let Some(e) = init {
                let (v, vt) = self.rv(e)?;
                let v = self.coerce(v, &vt, ty, span)?;
                let a = self.vint();
                self.push(Inst::SlotAddr { d: a, slot });
                match ty {
                    ast::Type::Float => self.push(Inst::FSt { s: v, addr: a, off: 0, nb: false }),
                    _ => self.push(Inst::St { s: v, addr: a, off: 0, nb: false }),
                }
            }
            return Ok(());
        }
        let v = match ty {
            ast::Type::Float => self.vfloat(),
            _ => self.vint(),
        };
        self.bind(name, Binding::Reg { v, ty: ty.clone() });
        if let Some(e) = init {
            let (val, vt) = self.rv(e)?;
            let val = self.coerce(val, &vt, ty, span)?;
            match ty {
                ast::Type::Float => self.push(Inst::FMov { d: v, s: val }),
                _ => self.push(Inst::Mov { d: v, s: val }),
            }
        }
        Ok(())
    }

    fn assign(
        &mut self,
        target: &Expr,
        op: Option<BinOp>,
        value: &Expr,
        span: Span,
    ) -> Result<(), CompileError> {
        let place = self.place(target)?;
        let tty = match &place {
            Place::Reg { ty, .. } => ty.clone(),
            Place::Mem { ty, .. } => ty.clone(),
            Place::Gr { .. } => ast::Type::Int,
        };
        // Compute the value to store.
        let stored = if let Some(op) = op {
            let cur = self.load_place(&place);
            let (rhs, rty) = self.rv(value)?;
            let (res, _) = self.binary_vals(op, cur, tty.clone(), rhs, rty, span)?;
            self.coerce(res, &tty, &tty, span)?
        } else {
            let (rhs, rty) = self.rv(value)?;
            self.coerce(rhs, &rty, &tty, span)?
        };
        self.store_place(&place, stored, span)
    }

    fn if_stmt(
        &mut self,
        cond: &Expr,
        then: &Block,
        els: Option<&Block>,
    ) -> Result<(), CompileError> {
        let c = self.cond(cond)?;
        let tb = self.new_block();
        let eb = self.new_block();
        let done = if els.is_some() { self.new_block() } else { eb };
        self.set_term(Term::Br { cond: c, t: tb, f: eb });
        self.start_block(tb);
        self.block(then)?;
        if !self.terminated() {
            self.set_term(Term::Jmp(done));
        }
        if let Some(e) = els {
            self.start_block(eb);
            self.block(e)?;
            if !self.terminated() {
                self.set_term(Term::Jmp(done));
            }
        }
        self.start_block(done);
        Ok(())
    }

    fn while_stmt(&mut self, cond: &Expr, body: &Block) -> Result<(), CompileError> {
        let head = self.new_block();
        let bodyb = self.new_block();
        let exit = self.new_block();
        self.set_term(Term::Jmp(head));
        self.start_block(head);
        let c = self.cond(cond)?;
        self.set_term(Term::Br { cond: c, t: bodyb, f: exit });
        self.start_block(bodyb);
        self.breaks.push(exit);
        self.continues.push(head);
        self.block(body)?;
        self.breaks.pop();
        self.continues.pop();
        if !self.terminated() {
            self.set_term(Term::Jmp(head));
        }
        self.start_block(exit);
        Ok(())
    }

    fn do_while(&mut self, body: &Block, cond: &Expr) -> Result<(), CompileError> {
        let bodyb = self.new_block();
        let check = self.new_block();
        let exit = self.new_block();
        self.set_term(Term::Jmp(bodyb));
        self.start_block(bodyb);
        self.breaks.push(exit);
        self.continues.push(check);
        self.block(body)?;
        self.breaks.pop();
        self.continues.pop();
        if !self.terminated() {
            self.set_term(Term::Jmp(check));
        }
        self.start_block(check);
        let c = self.cond(cond)?;
        self.set_term(Term::Br { cond: c, t: bodyb, f: exit });
        self.start_block(exit);
        Ok(())
    }

    fn for_stmt(
        &mut self,
        init: &Option<Box<Stmt>>,
        cond: &Option<Expr>,
        step: &Option<Box<Stmt>>,
        body: &Block,
    ) -> Result<(), CompileError> {
        self.scopes.push(HashMap::new());
        if let Some(i) = init {
            self.stmt(i)?;
        }
        let head = self.new_block();
        let bodyb = self.new_block();
        let stepb = self.new_block();
        let exit = self.new_block();
        self.set_term(Term::Jmp(head));
        self.start_block(head);
        match cond {
            Some(c) => {
                let v = self.cond(c)?;
                self.set_term(Term::Br { cond: v, t: bodyb, f: exit });
            }
            None => self.set_term(Term::Jmp(bodyb)),
        }
        self.start_block(bodyb);
        self.breaks.push(exit);
        self.continues.push(stepb);
        self.block(body)?;
        self.breaks.pop();
        self.continues.pop();
        if !self.terminated() {
            self.set_term(Term::Jmp(stepb));
        }
        self.start_block(stepb);
        if let Some(s) = step {
            self.stmt(s)?;
        }
        self.set_term(Term::Jmp(head));
        self.start_block(exit);
        self.scopes.pop();
        Ok(())
    }

    fn ret(&mut self, e: Option<&Expr>, span: Span) -> Result<(), CompileError> {
        if self.f.is_main {
            // In main, return ends the program.
            if let Some(e) = e {
                self.rv(e)?;
            }
            self.set_term(Term::Halt);
            return Ok(());
        }
        match (e, self.f.ret) {
            (None, None) => self.set_term(Term::Ret(None)),
            (Some(e), Some(cls)) => {
                let (v, vt) = self.rv(e)?;
                let want = if cls == Class::Float { ast::Type::Float } else { vt.clone() };
                let v = self.coerce(v, &vt, &want, span)?;
                self.set_term(Term::Ret(Some(v)));
            }
            (None, Some(_)) => {
                return Err(CompileError::ty("missing return value", span));
            }
            (Some(_), None) => {
                return Err(CompileError::ty("void function returns a value", span));
            }
        }
        Ok(())
    }

    fn spawn(&mut self, lo: &Expr, hi: &Expr, body: &Block, span: Span) -> Result<(), CompileError> {
        if self.in_par {
            return Err(CompileError::Internal("nested spawn reached lowering".into()));
        }
        let (vlo, lt) = self.rv(lo)?;
        let vlo = self.coerce(vlo, &lt, &ast::Type::Int, span)?;
        let (vhi, ht) = self.rv(hi)?;
        let vhi = self.coerce(vhi, &ht, &ast::Type::Int, span)?;

        self.in_par = true;
        let harness = self.new_block();
        self.in_par = false;
        let cont = self.new_block();
        self.in_par = true;

        self.set_term(Term::SpawnStart { lo: vlo, hi: vhi, harness, cont });

        // Harness: allocate the next virtual-thread id.
        self.start_block(harness);
        let tid = self.vint();
        self.push(Inst::Tid { d: tid });
        let body_entry = self.new_block();
        self.set_term(Term::Jmp(body_entry));

        // Body.
        self.start_block(body_entry);
        let saved_tid = self.tid.replace(tid);
        let saved_breaks = std::mem::take(&mut self.breaks);
        let saved_conts = std::mem::take(&mut self.continues);
        self.block(body)?;
        self.breaks = saved_breaks;
        self.continues = saved_conts;
        self.tid = saved_tid;
        if !self.terminated() {
            // Thread end: loop back for the next id.
            self.set_term(Term::Jmp(harness));
        }

        self.in_par = false;
        self.start_block(cont);
        Ok(())
    }

    // ---------------- expressions ----------------

    /// Lower a condition: an int-typed value.
    fn cond(&mut self, e: &Expr) -> Result<V, CompileError> {
        let (v, t) = self.rv(e)?;
        match t {
            ast::Type::Int | ast::Type::Ptr(_) => Ok(v),
            other => Err(CompileError::ty(
                format!("condition must be int, found {other} (compare explicitly)"),
                e.span(),
            )),
        }
    }

    /// Lower an rvalue.
    fn rv(&mut self, e: &Expr) -> Result<(V, ast::Type), CompileError> {
        match self.rv_allow_void(e)? {
            Some(r) => Ok(r),
            None => Err(CompileError::ty("void value used", e.span())),
        }
    }

    fn rv_allow_void(&mut self, e: &Expr) -> Result<Option<(V, ast::Type)>, CompileError> {
        Ok(Some(match e {
            Expr::IntLit(v) => {
                let d = self.vint();
                self.push(Inst::Li { d, imm: *v as i32 });
                (d, ast::Type::Int)
            }
            Expr::FloatLit(v) => {
                let d = self.vfloat();
                self.push(Inst::FLi { d, imm: *v as f32 });
                (d, ast::Type::Float)
            }
            Expr::Dollar(span) => {
                let Some(t) = self.tid else {
                    return Err(CompileError::sema("`$` outside spawn", *span));
                };
                (t, ast::Type::Int)
            }
            Expr::Ident(..) | Expr::Index { .. } | Expr::Deref(_) => {
                let place = self.place(e)?;
                let ty = match &place {
                    Place::Reg { ty, .. } | Place::Mem { ty, .. } => ty.clone(),
                    Place::Gr { .. } => ast::Type::Int,
                };
                // Array-typed places decayed inside place(); loads here.
                let v = self.load_place(&place);
                (v, ty)
            }
            Expr::Unary { op, e } => {
                let (v, t) = self.rv(e)?;
                match (op, &t) {
                    (UnOp::Neg, ast::Type::Float) => {
                        let d = self.vfloat();
                        self.push(Inst::FNeg { d, s: v });
                        (d, ast::Type::Float)
                    }
                    (UnOp::Neg, ast::Type::Int) => {
                        let d = self.vint();
                        self.push(Inst::Bin { op: BinK::Sub, d, a: Operand::C(0), b: Operand::V(v) });
                        (d, ast::Type::Int)
                    }
                    (UnOp::Not, ast::Type::Int) | (UnOp::Not, ast::Type::Ptr(_)) => {
                        let d = self.vint();
                        self.push(Inst::Bin { op: BinK::Seq, d, a: Operand::V(v), b: Operand::C(0) });
                        (d, ast::Type::Int)
                    }
                    (UnOp::BitNot, ast::Type::Int) => {
                        let d = self.vint();
                        self.push(Inst::Bin { op: BinK::Xor, d, a: Operand::V(v), b: Operand::C(-1) });
                        (d, ast::Type::Int)
                    }
                    (op, t) => {
                        return Err(CompileError::ty(
                            format!("unary {op:?} not defined on {t}"),
                            e.span(),
                        ))
                    }
                }
            }
            Expr::Binary { op, l, r } => {
                if matches!(op, BinOp::LogAnd | BinOp::LogOr) {
                    return Ok(Some(self.short_circuit(*op, l, r)?));
                }
                let (lv, lt) = self.rv(l)?;
                let (rv, rt) = self.rv(r)?;
                self.binary_vals(*op, lv, lt, rv, rt, l.span())?
            }
            Expr::Ternary { c, t, e: ee } => {
                let cv = self.cond(c)?;
                let tb = self.new_block();
                let eb = self.new_block();
                let done = self.new_block();
                self.set_term(Term::Br { cond: cv, t: tb, f: eb });

                self.start_block(tb);
                let (tv, tt) = self.rv(t)?;
                let t_end = self.cur;

                self.start_block(eb);
                let (ev, et) = self.rv(ee)?;
                let e_end = self.cur;

                // Unify types.
                let res_ty = unify(&tt, &et).ok_or_else(|| {
                    CompileError::ty(format!("ternary arms differ: {tt} vs {et}"), c.span())
                })?;
                let d = if res_ty == ast::Type::Float { self.vfloat() } else { self.vint() };

                self.start_block(t_end);
                let tv = self.coerce(tv, &tt, &res_ty, c.span())?;
                self.emit_move(d, tv, &res_ty);
                self.set_term(Term::Jmp(done));

                self.start_block(e_end);
                let ev = self.coerce(ev, &et, &res_ty, c.span())?;
                self.emit_move(d, ev, &res_ty);
                self.set_term(Term::Jmp(done));

                self.start_block(done);
                (d, res_ty)
            }
            Expr::AddrOf(inner, span) => {
                // &*p == p; &lvalue otherwise.
                if let Expr::Deref(p) = inner.as_ref() {
                    return Ok(Some(self.rv(p)?));
                }
                let place = self.place(inner)?;
                match place {
                    Place::Mem { addr, off, ty, .. } => {
                        let v = if off == 0 {
                            addr
                        } else {
                            let d = self.vint();
                            self.push(Inst::Bin {
                                op: BinK::Add,
                                d,
                                a: Operand::V(addr),
                                b: Operand::C(off),
                            });
                            d
                        };
                        (v, ty.ptr())
                    }
                    Place::Reg { .. } => {
                        return Err(CompileError::sema(
                            "cannot take the address of a register variable",
                            *span,
                        ))
                    }
                    Place::Gr { .. } => {
                        return Err(CompileError::sema(
                            "cannot take the address of a ps base",
                            *span,
                        ))
                    }
                }
            }
            Expr::Cast { ty, e } => {
                let (v, t) = self.rv(e)?;
                match (&t, ty) {
                    (ast::Type::Int, ast::Type::Float) => {
                        let d = self.vfloat();
                        self.push(Inst::CvtIF { d, s: v });
                        (d, ast::Type::Float)
                    }
                    (ast::Type::Float, ast::Type::Int) => {
                        let d = self.vint();
                        self.push(Inst::CvtFI { d, s: v });
                        (d, ast::Type::Int)
                    }
                    (ast::Type::Float, ast::Type::Float) => (v, ast::Type::Float),
                    (_, ast::Type::Float) | (ast::Type::Float, _) => {
                        return Err(CompileError::ty(
                            format!("cannot cast {t} to {ty}"),
                            e.span(),
                        ))
                    }
                    // int <-> pointer and pointer <-> pointer are free.
                    _ => (v, ty.clone()),
                }
            }
            Expr::Call { name, args, span } => {
                return self.call(name, args, *span);
            }
            Expr::Ps { local, base, span } => {
                let Expr::Ident(bname, _) = base.as_ref() else {
                    return Err(CompileError::sema("ps base must be an identifier", *span));
                };
                let gr = self
                    .globals
                    .get(bname)
                    .and_then(|g| g.ps_base)
                    .ok_or_else(|| {
                        CompileError::sema(format!("`{bname}` is not a ps base"), *span)
                    })?;
                let place = self.place(local)?;
                if place_ty(&place) != ast::Type::Int {
                    return Err(CompileError::ty("ps local must be int", *span));
                }
                let v = self.load_place(&place);
                let sd = self.vint();
                self.push(Inst::Mov { d: sd, s: v });
                self.push(Inst::Ps { s_d: sd, gr });
                self.store_place(&place, sd, *span)?;
                return Ok(None);
            }
            Expr::Psm { local, target, span } => {
                let lplace = self.place(local)?;
                if place_ty(&lplace) != ast::Type::Int {
                    return Err(CompileError::ty("psm local must be int", *span));
                }
                let tplace = self.place(target)?;
                let Place::Mem { addr, off, ty, .. } = tplace else {
                    return Err(CompileError::sema(
                        "psm target must be a memory location",
                        *span,
                    ));
                };
                if ty != ast::Type::Int {
                    return Err(CompileError::ty("psm target must be int", *span));
                }
                let v = self.load_place(&lplace);
                let sd = self.vint();
                self.push(Inst::Mov { d: sd, s: v });
                self.push(Inst::Psm { s_d: sd, addr, off });
                self.store_place(&lplace, sd, *span)?;
                return Ok(None);
            }
        }))
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        span: Span,
    ) -> Result<Option<(V, ast::Type)>, CompileError> {
        // Builtins.
        match name {
            "print" => {
                let (v, t) = self.rv(&args[0])?;
                match t {
                    ast::Type::Float => self.push(Inst::PrintF { s: v }),
                    _ => self.push(Inst::Print { s: v }),
                }
                return Ok(None);
            }
            "printc" => {
                let (v, t) = self.rv(&args[0])?;
                if t != ast::Type::Int {
                    return Err(CompileError::ty("printc takes an int", span));
                }
                self.push(Inst::PrintC { s: v });
                return Ok(None);
            }
            "alloc" => {
                if self.in_par {
                    return Err(CompileError::sema(
                        "alloc is serial-only: dynamic memory allocation in parallel \
                         code is future work (paper §IV-D)",
                        span,
                    ));
                }
                let (v, t) = self.rv(&args[0])?;
                if t != ast::Type::Int {
                    return Err(CompileError::ty("alloc takes an int byte count", span));
                }
                let d = self.vint();
                self.push(Inst::Alloc { d, size: v });
                return Ok(Some((d, ast::Type::Int.ptr())));
            }
            _ => {}
        }
        let sig = self
            .sigs
            .get(name)
            .ok_or_else(|| CompileError::sema(format!("unknown function `{name}`"), span))?
            .clone();
        if sig.params.len() != args.len() {
            return Err(CompileError::ty(
                format!(
                    "`{name}` expects {} arguments, got {}",
                    sig.params.len(),
                    args.len()
                ),
                span,
            ));
        }
        let mut argv = Vec::with_capacity(args.len());
        for (a, want) in args.iter().zip(&sig.params) {
            let (v, t) = self.rv(a)?;
            let v = self.coerce(v, &t, want, a.span())?;
            argv.push(v);
        }
        let ret = match sig.ret {
            ast::Type::Void => None,
            ast::Type::Float => Some((self.vfloat(), Class::Float)),
            _ => Some((self.vint(), Class::Int)),
        };
        self.push(Inst::Call { name: name.to_string(), args: argv, ret });
        Ok(ret.map(|(v, c)| {
            (v, if c == Class::Float { ast::Type::Float } else { sig.ret.clone() })
        }))
    }

    fn short_circuit(
        &mut self,
        op: BinOp,
        l: &Expr,
        r: &Expr,
    ) -> Result<(V, ast::Type), CompileError> {
        let d = self.vint();
        let lv = self.cond(l)?;
        // Normalize lhs to 0/1 into d.
        self.push(Inst::Bin { op: BinK::Sne, d, a: Operand::V(lv), b: Operand::C(0) });
        let rhs_b = self.new_block();
        let done = self.new_block();
        match op {
            BinOp::LogAnd => self.set_term(Term::Br { cond: lv, t: rhs_b, f: done }),
            BinOp::LogOr => self.set_term(Term::Br { cond: lv, t: done, f: rhs_b }),
            _ => unreachable!(),
        }
        self.start_block(rhs_b);
        let rv = self.cond(r)?;
        self.push(Inst::Bin { op: BinK::Sne, d, a: Operand::V(rv), b: Operand::C(0) });
        self.set_term(Term::Jmp(done));
        self.start_block(done);
        Ok((d, ast::Type::Int))
    }

    /// Apply a (non-logical) binary operator to already-lowered values.
    fn binary_vals(
        &mut self,
        op: BinOp,
        lv: V,
        lt: ast::Type,
        rv: V,
        rt: ast::Type,
        span: Span,
    ) -> Result<(V, ast::Type), CompileError> {
        use ast::Type as T;
        // Pointer arithmetic: ptr ± int scales by the 4-byte element.
        if let (T::Ptr(_), T::Int) | (T::Int, T::Ptr(_)) = (&lt, &rt) {
            if matches!(op, BinOp::Add | BinOp::Sub) {
                let (p, pty, i) = if matches!(lt, T::Ptr(_)) { (lv, lt.clone(), rv) } else { (rv, rt.clone(), lv) };
                if matches!(op, BinOp::Sub) && matches!(lt, T::Int) {
                    return Err(CompileError::ty("int - pointer is not defined", span));
                }
                let scaled = self.vint();
                self.push(Inst::Bin { op: BinK::Shl, d: scaled, a: Operand::V(i), b: Operand::C(2) });
                let d = self.vint();
                let k = if matches!(op, BinOp::Add) { BinK::Add } else { BinK::Sub };
                self.push(Inst::Bin { op: k, d, a: Operand::V(p), b: Operand::V(scaled) });
                return Ok((d, pty));
            }
        }
        // Pointer comparisons / equality.
        if matches!((&lt, &rt), (T::Ptr(_), T::Ptr(_))) {
            if op.is_comparison() {
                let d = self.vint();
                self.push(Inst::Bin { op: cmp_kind(op), d, a: Operand::V(lv), b: Operand::V(rv) });
                return Ok((d, T::Int));
            }
            return Err(CompileError::ty("pointer arithmetic between pointers", span));
        }

        let float = lt == T::Float || rt == T::Float;
        if float {
            let a = self.coerce(lv, &lt, &T::Float, span)?;
            let b = self.coerce(rv, &rt, &T::Float, span)?;
            if op.is_comparison() {
                let d = self.vint();
                let (k, a, b) = match op {
                    BinOp::Eq => (FCmpK::Eq, a, b),
                    BinOp::Lt => (FCmpK::Lt, a, b),
                    BinOp::Le => (FCmpK::Le, a, b),
                    BinOp::Gt => (FCmpK::Lt, b, a),
                    BinOp::Ge => (FCmpK::Le, b, a),
                    BinOp::Ne => {
                        // !(a == b)
                        let t = self.vint();
                        self.push(Inst::FCmp { op: FCmpK::Eq, d: t, a, b });
                        self.push(Inst::Bin { op: BinK::Seq, d, a: Operand::V(t), b: Operand::C(0) });
                        return Ok((d, T::Int));
                    }
                    _ => unreachable!(),
                };
                self.push(Inst::FCmp { op: k, d, a, b });
                return Ok((d, T::Int));
            }
            let k = match op {
                BinOp::Add => FBinK::Add,
                BinOp::Sub => FBinK::Sub,
                BinOp::Mul => FBinK::Mul,
                BinOp::Div => FBinK::Div,
                other => {
                    return Err(CompileError::ty(
                        format!("operator {other:?} not defined on float"),
                        span,
                    ))
                }
            };
            let d = self.vfloat();
            self.push(Inst::FBin { op: k, d, a, b });
            return Ok((d, T::Float));
        }

        // Integer path.
        if lt != T::Int || rt != T::Int {
            return Err(CompileError::ty(
                format!("operator {op:?} not defined on {lt} and {rt}"),
                span,
            ));
        }
        let d = self.vint();
        let k = match op {
            BinOp::Add => BinK::Add,
            BinOp::Sub => BinK::Sub,
            BinOp::Mul => BinK::Mul,
            BinOp::Div => BinK::Div,
            BinOp::Rem => BinK::Rem,
            BinOp::Shl => BinK::Shl,
            BinOp::Shr => BinK::Sra,
            BinOp::BitAnd => BinK::And,
            BinOp::BitOr => BinK::Or,
            BinOp::BitXor => BinK::Xor,
            cmp => cmp_kind(cmp),
        };
        self.push(Inst::Bin { op: k, d, a: Operand::V(lv), b: Operand::V(rv) });
        Ok((d, T::Int))
    }

    // ---------------- places ----------------

    fn place(&mut self, e: &Expr) -> Result<Place, CompileError> {
        match e {
            Expr::Ident(name, span) => {
                if let Some(b) = self.lookup(name).cloned() {
                    return Ok(match b {
                        Binding::Reg { v, ty } => Place::Reg { v, ty },
                        Binding::Slot { slot, ty, is_array } => {
                            let a = self.vint();
                            self.push(Inst::SlotAddr { d: a, slot });
                            if is_array {
                                // Decayed: the "place" is the pointer value
                                // itself; callers use rv() which will treat
                                // a Reg of pointer type correctly.
                                Place::Reg { v: a, ty: ty.ptr() }
                            } else {
                                Place::Mem { addr: a, off: 0, ty, volatile: false, ro: false }
                            }
                        }
                    });
                }
                let Some(g) = self.globals.get(name).cloned() else {
                    return Err(CompileError::sema(format!("unknown variable `{name}`"), *span));
                };
                if let Some(gr) = g.ps_base {
                    return Ok(Place::Gr { gr });
                }
                let a = self.vint();
                self.push(Inst::La { d: a, symbol: name.clone() });
                if g.is_array {
                    Ok(Place::Reg { v: a, ty: g.elem.ptr() })
                } else {
                    Ok(Place::Mem {
                        addr: a,
                        off: 0,
                        ty: g.elem,
                        volatile: g.volatile,
                        ro: g.is_const && self.in_par && self.opts.ro_cache_const,
                    })
                }
            }
            Expr::Index { base, idx } => {
                // Flags survive when the base is a direct global array.
                let (volatile, ro) = match base.as_ref() {
                    Expr::Ident(n, _) if self.lookup(n).is_none() => {
                        match self.globals.get(n) {
                            Some(g) => (
                                g.volatile,
                                g.is_const && self.in_par && self.opts.ro_cache_const,
                            ),
                            None => (false, false),
                        }
                    }
                    _ => (false, false),
                };
                let (bv, bt) = self.rv(base)?;
                let elem = bt
                    .deref()
                    .ok_or_else(|| {
                        CompileError::ty(format!("cannot index into {bt}"), base.span())
                    })?
                    .clone();
                let (iv, it) = self.rv(idx)?;
                if it != ast::Type::Int {
                    return Err(CompileError::ty("index must be int", idx.span()));
                }
                let scaled = self.vint();
                self.push(Inst::Bin { op: BinK::Shl, d: scaled, a: Operand::V(iv), b: Operand::C(2) });
                let addr = self.vint();
                self.push(Inst::Bin { op: BinK::Add, d: addr, a: Operand::V(bv), b: Operand::V(scaled) });
                Ok(Place::Mem { addr, off: 0, ty: elem, volatile, ro })
            }
            Expr::Deref(inner) => {
                let (v, t) = self.rv(inner)?;
                let elem = t
                    .deref()
                    .ok_or_else(|| {
                        CompileError::ty(format!("cannot dereference {t}"), inner.span())
                    })?
                    .clone();
                Ok(Place::Mem { addr: v, off: 0, ty: elem, volatile: false, ro: false })
            }
            other => Err(CompileError::ty("expression is not an lvalue", other.span())),
        }
    }

    fn load_place(&mut self, p: &Place) -> V {
        match p {
            Place::Reg { v, .. } => *v,
            Place::Mem { addr, off, ty, volatile, ro } => match ty {
                ast::Type::Float => {
                    let d = self.vfloat();
                    self.push(Inst::FLd { d, addr: *addr, off: *off });
                    d
                }
                _ => {
                    let d = self.vint();
                    self.push(Inst::Ld { d, addr: *addr, off: *off, ro: *ro, volatile: *volatile });
                    d
                }
            },
            Place::Gr { gr } => {
                let d = self.vint();
                self.push(Inst::GrGet { d, gr: *gr });
                d
            }
        }
    }

    fn store_place(&mut self, p: &Place, v: V, span: Span) -> Result<(), CompileError> {
        match p {
            Place::Reg { v: dst, ty } => {
                self.emit_move(*dst, v, ty);
                Ok(())
            }
            Place::Mem { addr, off, ty, .. } => {
                match ty {
                    ast::Type::Float => self.push(Inst::FSt { s: v, addr: *addr, off: *off, nb: false }),
                    _ => self.push(Inst::St { s: v, addr: *addr, off: *off, nb: false }),
                }
                Ok(())
            }
            Place::Gr { gr } => {
                if self.in_par {
                    return Err(CompileError::sema(
                        "ps base cannot be assigned in parallel code",
                        span,
                    ));
                }
                self.push(Inst::GrPut { gr: *gr, s: v });
                Ok(())
            }
        }
    }

    fn emit_move(&mut self, d: V, s: V, ty: &ast::Type) {
        if d == s {
            return;
        }
        match ty {
            ast::Type::Float => self.push(Inst::FMov { d, s }),
            _ => self.push(Inst::Mov { d, s }),
        }
    }

    /// Convert `v: from` to type `to` (int → float implicit; float → int
    /// requires a cast and is rejected here).
    fn coerce(
        &mut self,
        v: V,
        from: &ast::Type,
        to: &ast::Type,
        span: Span,
    ) -> Result<V, CompileError> {
        use ast::Type as T;
        if from == to {
            return Ok(v);
        }
        match (from, to) {
            (T::Int, T::Float) => {
                let d = self.vfloat();
                self.push(Inst::CvtIF { d, s: v });
                Ok(d)
            }
            (T::Float, T::Int) => Err(CompileError::ty(
                "implicit float → int conversion; use an explicit cast",
                span,
            )),
            // Pointer/int mixing is allowed C-style.
            (T::Ptr(_), T::Int) | (T::Int, T::Ptr(_)) | (T::Ptr(_), T::Ptr(_)) => Ok(v),
            (a, b) => Err(CompileError::ty(format!("cannot convert {a} to {b}"), span)),
        }
    }
}

/// Best-effort source line of a statement.
fn stmt_line(s: &Stmt) -> Option<u32> {
    let span = match s {
        Stmt::Decl { span, .. }
        | Stmt::Assign { span, .. }
        | Stmt::Break(span)
        | Stmt::Continue(span)
        | Stmt::Return(_, span)
        | Stmt::Spawn { span, .. } => *span,
        Stmt::If { cond, .. } => cond.span(),
        Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => cond.span(),
        Stmt::For { cond: Some(c), .. } => c.span(),
        Stmt::Expr(e) => e.span(),
        _ => return None,
    };
    (span.line != 0).then_some(span.line)
}

fn place_ty(p: &Place) -> ast::Type {
    match p {
        Place::Reg { ty, .. } | Place::Mem { ty, .. } => ty.clone(),
        Place::Gr { .. } => ast::Type::Int,
    }
}

fn cmp_kind(op: BinOp) -> BinK {
    match op {
        BinOp::Lt => BinK::Slt,
        BinOp::Le => BinK::Sle,
        BinOp::Gt => BinK::Sgt,
        BinOp::Ge => BinK::Sge,
        BinOp::Eq => BinK::Seq,
        BinOp::Ne => BinK::Sne,
        _ => unreachable!("not a comparison"),
    }
}

fn unify(a: &ast::Type, b: &ast::Type) -> Option<ast::Type> {
    use ast::Type as T;
    match (a, b) {
        _ if a == b => Some(a.clone()),
        (T::Int, T::Float) | (T::Float, T::Int) => Some(T::Float),
        (T::Ptr(_), T::Int) => Some(a.clone()),
        (T::Int, T::Ptr(_)) => Some(b.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;

    fn lower_src(src: &str) -> Result<Module, CompileError> {
        let checked = check(parse(src).unwrap())?;
        lower(&checked, &Options::default())
    }

    #[test]
    fn lowers_fig2a_with_spawn_region() {
        let m = lower_src(
            "int A[8]; int B[8]; int base = 0; int N = 8;
             void main() { spawn(0, N-1) { int inc = 1;
                 if (A[$] != 0) { ps(inc, base); B[inc] = A[$]; } } }",
        )
        .unwrap();
        let main = m.functions.iter().find(|f| f.name == "main").unwrap();
        assert!(main.has_spawn());
        // There must be a SpawnStart terminator and a Tid in the harness.
        let spawn_bb = main
            .blocks
            .iter()
            .find(|b| matches!(b.term, Term::SpawnStart { .. }))
            .expect("spawn start");
        let Term::SpawnStart { harness, .. } = spawn_bb.term else { unreachable!() };
        let hblock = &main.blocks[harness as usize];
        assert!(hblock.parallel);
        assert!(matches!(hblock.insts[0], Inst::Tid { .. }));
        // The parallel body contains a Ps on gr1.
        assert!(main.blocks.iter().any(|b| b.parallel
            && b.insts.iter().any(|i| matches!(i, Inst::Ps { gr: 1, .. }))));
        // Globals got consecutive addresses; base is absent (ps base).
        assert!(m.memmap.lookup("A").is_some());
        assert!(m.memmap.lookup("base").is_none());
    }

    #[test]
    fn global_initializers_encode() {
        let m = lower_src("int a = -3; float f = 1.5; int T[3] = {7, 8, 9}; void main() {}")
            .unwrap();
        assert_eq!(m.memmap.lookup("a").unwrap().words, vec![(-3i32) as u32]);
        assert_eq!(m.memmap.lookup("f").unwrap().words, vec![1.5f32.to_bits()]);
        assert_eq!(m.memmap.lookup("T").unwrap().words, vec![7, 8, 9]);
        assert!(m.globals["f"].is_float);
    }

    #[test]
    fn float_int_typing() {
        // implicit int→float in mixed arithmetic; explicit cast back.
        lower_src("float x; void main() { x = 1 + 2.5; int y = (int)x; y += 1; }").unwrap();
        // implicit float→int rejected.
        let err = lower_src("float x; void main() { int y = x; }").unwrap_err();
        assert!(err.to_string().contains("cast"));
        // float condition rejected.
        let err = lower_src("float x; void main() { if (x) {} }").unwrap_err();
        assert!(err.to_string().contains("condition"));
        // float comparison fine.
        lower_src("float x; void main() { if (x > 0.5) {} }").unwrap();
    }

    #[test]
    fn pointer_arithmetic_scales() {
        let m = lower_src(
            "int A[8]; void main() { int* p = A; p = p + 3; *p = 5; int x = p[1]; x += 1; }",
        )
        .unwrap();
        let main = &m.functions[0];
        // Look for a Shl by 2 (scaling).
        assert!(main.blocks.iter().any(|b| b
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Bin { op: BinK::Shl, b: Operand::C(2), .. }))));
    }

    #[test]
    fn addressed_local_gets_slot() {
        let m = lower_src("void f(int* p) { *p = 1; } void main() { int x = 0; f(&x); print(x); }")
            .unwrap();
        let main = m.functions.iter().find(|f| f.name == "main").unwrap();
        assert_eq!(main.slots.len(), 1);
        assert!(main
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Inst::SlotAddr { .. }))));
    }

    #[test]
    fn address_of_parallel_local_rejected() {
        // Without outlining, &local inside spawn would need a TCU stack.
        let checked = check(parse(
            "void main() { spawn(0, 3) { int x = 1; int* p = &x; *p = 2; } }",
        ).unwrap())
        .unwrap();
        let err = lower(&checked, &Options::default()).unwrap_err();
        assert!(err.to_string().contains("no stack"), "{err}");
    }

    #[test]
    fn short_circuit_produces_blocks() {
        let m = lower_src("int a; int b; void main() { if (a > 0 && b > 0) { print(1); } }")
            .unwrap();
        let main = &m.functions[0];
        assert!(main.blocks.len() >= 4);
    }

    #[test]
    fn psm_on_memory() {
        let m = lower_src("int c; void main() { int v = 5; psm(v, c); print(v); }").unwrap();
        let main = &m.functions[0];
        assert!(main
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Psm { .. }))));
    }

    #[test]
    fn ps_base_init_emits_grput() {
        let m = lower_src(
            "int base = 42; void main() { int v = 1; ps(v, base); print(v); }",
        )
        .unwrap();
        let main = m.functions.iter().find(|f| f.name == "main").unwrap();
        let entry = &main.blocks[main.entry as usize];
        assert!(entry
            .insts
            .iter()
            .any(|i| matches!(i, Inst::GrPut { gr: 1, .. })));
    }

    #[test]
    fn call_arity_and_types_checked() {
        let err = lower_src("int f(int a) { return a; } void main() { f(1, 2); }").unwrap_err();
        assert!(err.to_string().contains("arguments"));
        let err = lower_src("void f(float x) {} void main() { }").unwrap_err();
        assert!(err.to_string().contains("float*"));
        // float return works.
        lower_src("float h() { return 2.5; } void main() { float x = h(); x = x + 1.0; }")
            .unwrap();
    }

    #[test]
    fn alloc_serial_only_checked_in_lowering() {
        let m = lower_src("void main() { int* p = alloc(64); p[0] = 1; }").unwrap();
        assert!(m.functions[0]
            .blocks
            .iter()
            .any(|b| b.insts.iter().any(|i| matches!(i, Inst::Alloc { .. }))));
    }
}
