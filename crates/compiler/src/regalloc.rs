//! Linear-scan register allocation.
//!
//! Serial code follows a MIPS-like convention: values live across calls
//! go to callee-saved `s` registers, everything else to caller-saved `t`
//! registers, and spills go to stack slots in the Master TCU's frame.
//!
//! Parallel code is different, and this is the paper's point (§IV-D):
//! *parallel stack allocation is not yet publicly supported*, so virtual
//! threads can only use registers; the compiler "checks if the available
//! registers suffice and produces a register spill error otherwise".
//! Any virtual register whose live range touches a parallel block (or
//! crosses the spawn, i.e. is broadcast) is pinned un-spillable here, and
//! running out of registers for one raises
//! [`CompileError::RegisterSpill`].

use crate::ir::*;
use crate::CompileError;
use std::collections::HashMap;
use xmt_isa::{FReg, Reg};

/// Caller-saved integer pool.
const T_POOL: [Reg; 11] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::T7,
    Reg::T8,
    Reg::T9,
    Reg::V1,
];

/// Callee-saved integer pool.
const S_POOL: [Reg; 8] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
];

/// Result of allocation for one function.
#[derive(Debug, Default)]
pub struct Assignment {
    /// Integer vreg → physical register.
    pub int_reg: HashMap<V, Reg>,
    /// Float vreg → physical register.
    pub f_reg: HashMap<V, FReg>,
    /// Spilled vreg → stack-slot index (slots appended to the function).
    pub spill: HashMap<V, u32>,
    /// Callee-saved registers used (to save/restore in the prologue).
    pub used_s: Vec<Reg>,
}

impl Assignment {
    /// The physical register of an integer vreg, if not spilled.
    pub fn reg(&self, v: V) -> Option<Reg> {
        self.int_reg.get(&v).copied()
    }

    /// The physical register of a float vreg, if not spilled.
    pub fn freg(&self, v: V) -> Option<FReg> {
        self.f_reg.get(&v).copied()
    }
}

#[derive(Debug, Clone)]
struct Interval {
    v: V,
    class: Class,
    start: u32,
    end: u32,
    crosses_call: bool,
    parallel: bool,
}

/// Allocate registers for `f`, possibly appending spill slots.
pub fn allocate(f: &mut IrFunction) -> Result<Assignment, CompileError> {
    let intervals = build_intervals(f);
    let mut asg = Assignment::default();

    // Sort by start position (stable on vreg id for determinism).
    let mut ivs: Vec<Interval> = intervals.into_values().collect();
    ivs.sort_by_key(|i| (i.start, i.v));

    // Independent scans per class.
    scan_int(f, ivs.iter().filter(|i| i.class == Class::Int), &mut asg)?;
    scan_float(f, ivs.iter().filter(|i| i.class == Class::Float), &mut asg)?;

    let mut used_s: Vec<Reg> = asg
        .int_reg
        .values()
        .copied()
        .filter(|r| S_POOL.contains(r))
        .collect();
    used_s.sort();
    used_s.dedup();
    asg.used_s = used_s;
    Ok(asg)
}

fn scan_int<'a>(
    f: &mut IrFunction,
    ivs: impl Iterator<Item = &'a Interval>,
    asg: &mut Assignment,
) -> Result<(), CompileError> {
    // active: (end, vreg, reg)
    let mut active: Vec<(u32, V, Reg)> = Vec::new();
    let mut free_t: Vec<Reg> = T_POOL.to_vec();
    let mut free_s: Vec<Reg> = S_POOL.to_vec();

    for iv in ivs {
        // Expire old intervals.
        active.retain(|&(end, _, r)| {
            if end < iv.start {
                if T_POOL.contains(&r) {
                    free_t.push(r);
                } else {
                    free_s.push(r);
                }
                false
            } else {
                true
            }
        });
        free_t.sort_by_key(|r| r.number());
        free_s.sort_by_key(|r| r.number());

        let pick = if iv.crosses_call {
            free_s.first().copied().inspect(|&r| {
                free_s.retain(|x| *x != r);
            })
        } else {
            // Prefer t-regs, fall back to s-regs.
            if let Some(&r) = free_t.first() {
                free_t.retain(|x| x != &r);
                Some(r)
            } else if let Some(&r) = free_s.first() {
                free_s.retain(|x| x != &r);
                Some(r)
            } else {
                None
            }
        };

        match pick {
            Some(r) => {
                asg.int_reg.insert(iv.v, r);
                active.push((iv.end, iv.v, r));
            }
            None => {
                // Spill: choose the active interval with the furthest end
                // among the spillable candidates (or the current one).
                spill_one(f, asg, &mut active, iv)?;
            }
        }
    }
    Ok(())
}

/// Spill either the current interval or the furthest-ending active one.
/// `parallel` intervals are not spillable — that situation is the
/// paper's register-spill error.
fn spill_one(
    f: &mut IrFunction,
    asg: &mut Assignment,
    active: &mut Vec<(u32, V, Reg)>,
    cur: &Interval,
) -> Result<(), CompileError> {
    // Find the furthest-ending spill candidate among active intervals.
    // We lack per-active parallel info here, so conservatively: if the
    // current interval is parallel, spilling an active one would still
    // leave the register for us; active parallel intervals are exactly
    // those that must keep registers. Track parallel-ness via a side map.
    let cur_parallel = cur.parallel;
    // Candidates: active intervals that are not parallel.
    let candidate = active
        .iter()
        .enumerate()
        .filter(|(_, (_, v, _))| !PARALLEL_SET.with(|s| s.borrow().contains(v)))
        .max_by_key(|(_, (end, _, _))| *end)
        .map(|(k, _)| k);

    match candidate {
        Some(k) if active[k].0 > cur.end || cur_parallel => {
            // Spill the active victim, give its register to `cur`.
            let (_, victim, r) = active.remove(k);
            asg.int_reg.remove(&victim);
            let slot = new_spill_slot(f);
            asg.spill.insert(victim, slot);
            asg.int_reg.insert(cur.v, r);
            active.push((cur.end, cur.v, r));
            Ok(())
        }
        _ if !cur_parallel => {
            let slot = new_spill_slot(f);
            asg.spill.insert(cur.v, slot);
            Ok(())
        }
        _ => Err(CompileError::RegisterSpill {
            function: f.name.clone(),
            message: format!(
                "virtual thread needs more than {} integer registers",
                T_POOL.len() + S_POOL.len()
            ),
        }),
    }
}

thread_local! {
    /// Set of parallel (un-spillable) vregs for the function currently
    /// being allocated. Populated by `build_intervals`.
    static PARALLEL_SET: std::cell::RefCell<std::collections::HashSet<V>> =
        std::cell::RefCell::new(std::collections::HashSet::new());
}

fn scan_float<'a>(
    f: &mut IrFunction,
    ivs: impl Iterator<Item = &'a Interval>,
    asg: &mut Assignment,
) -> Result<(), CompileError> {
    // f0/f1 are reserved as code-generator scratch for spill reloads.
    let pool: Vec<FReg> = FReg::allocatable().filter(|r| r.0 >= 2).collect();
    let mut active: Vec<(u32, V, FReg)> = Vec::new();
    let mut free: Vec<FReg> = pool;

    for iv in ivs {
        active.retain(|&(end, _, r)| {
            if end < iv.start {
                free.push(r);
                false
            } else {
                true
            }
        });
        free.sort_by_key(|r| r.0);

        // Floats live across calls are spilled (no callee-saved FP regs).
        if iv.crosses_call {
            if iv.parallel {
                return Err(CompileError::Internal(
                    "call inside parallel code survived sema".into(),
                ));
            }
            let slot = new_spill_slot(f);
            asg.spill.insert(iv.v, slot);
            continue;
        }
        if let Some(&r) = free.first() {
            free.retain(|x| *x != r);
            asg.f_reg.insert(iv.v, r);
            active.push((iv.end, iv.v, r));
        } else {
            // Spill furthest-ending non-parallel active, else current.
            let candidate = active
                .iter()
                .enumerate()
                .filter(|(_, (_, v, _))| !PARALLEL_SET.with(|s| s.borrow().contains(v)))
                .max_by_key(|(_, (end, _, _))| *end)
                .map(|(k, _)| k);
            match candidate {
                Some(k) if active[k].0 > iv.end || iv.parallel => {
                    let (_, victim, r) = active.remove(k);
                    asg.f_reg.remove(&victim);
                    let slot = new_spill_slot(f);
                    asg.spill.insert(victim, slot);
                    asg.f_reg.insert(iv.v, r);
                    active.push((iv.end, iv.v, r));
                }
                _ if !iv.parallel => {
                    let slot = new_spill_slot(f);
                    asg.spill.insert(iv.v, slot);
                }
                _ => {
                    return Err(CompileError::RegisterSpill {
                        function: f.name.clone(),
                        message: "virtual thread needs more float registers than the TCU has"
                            .into(),
                    })
                }
            }
        }
    }
    Ok(())
}

fn new_spill_slot(f: &mut IrFunction) -> u32 {
    f.slots.push(4);
    (f.slots.len() - 1) as u32
}

/// Compute one live interval per vreg over a linear numbering.
///
/// Positions are split per instruction: instruction `i` *uses* its
/// operands at `2(i+1)` and *defines* its result at `2(i+1)+1`;
/// parameters are defined at position 1 (the prologue). A call therefore
/// sits strictly *inside* the interval of any value defined before it and
/// used after it — the condition for needing a callee-saved register —
/// while values merely passed as arguments do not cross it.
fn build_intervals(f: &IrFunction) -> HashMap<V, Interval> {
    // Linear instruction counter across the whole function (starts at 1
    // so the prologue owns position 1).
    let mut counter: u32 = 1;
    let mut block_start = vec![0u32; f.blocks.len()];
    let mut block_end = vec![0u32; f.blocks.len()];
    let mut call_positions = Vec::new();
    let mut parallel_ranges: Vec<(u32, u32)> = Vec::new();
    for (bi, b) in f.blocks.iter().enumerate() {
        block_start[bi] = 2 * counter;
        for i in &b.insts {
            if matches!(i, Inst::Call { .. }) {
                call_positions.push(2 * counter);
            }
            counter += 1;
        }
        counter += 1; // terminator slot
        block_end[bi] = 2 * counter - 1;
        if b.parallel {
            parallel_ranges.push((block_start[bi], block_end[bi]));
        }
    }

    // Liveness (per-block live-in/out) via iterative dataflow.
    let nb = f.blocks.len();
    let mut live_in: Vec<std::collections::HashSet<V>> = vec![Default::default(); nb];
    let mut live_out: Vec<std::collections::HashSet<V>> = vec![Default::default(); nb];
    let mut gen: Vec<std::collections::HashSet<V>> = vec![Default::default(); nb];
    let mut def: Vec<std::collections::HashSet<V>> = vec![Default::default(); nb];
    for (bi, b) in f.blocks.iter().enumerate() {
        for i in &b.insts {
            for u in i.uses() {
                if !def[bi].contains(&u) {
                    gen[bi].insert(u);
                }
            }
            if let Some(d) = i.def() {
                def[bi].insert(d);
            }
        }
        for u in b.term.uses() {
            if !def[bi].contains(&u) {
                gen[bi].insert(u);
            }
        }
    }
    loop {
        let mut changed = false;
        for bi in (0..nb).rev() {
            let mut out: std::collections::HashSet<V> = Default::default();
            for s in f.blocks[bi].term.succs() {
                out.extend(live_in[s as usize].iter().copied());
            }
            let mut inn = gen[bi].clone();
            for v in &out {
                if !def[bi].contains(v) {
                    inn.insert(*v);
                }
            }
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut ivs: HashMap<V, Interval> = HashMap::new();
    let mut touch = |v: V, p: u32, class: Class| {
        let e = ivs.entry(v).or_insert(Interval {
            v,
            class,
            start: p,
            end: p,
            crosses_call: false,
            parallel: false,
        });
        e.start = e.start.min(p);
        e.end = e.end.max(p);
    };
    let class_of = |v: V| f.vclass[v as usize];

    // Params are defined in the prologue.
    for &p in &f.params {
        touch(p, 1, class_of(p));
    }
    let mut counter: u32 = 1;
    for (bi, b) in f.blocks.iter().enumerate() {
        for v in &live_in[bi] {
            touch(*v, block_start[bi], class_of(*v));
        }
        for v in &live_out[bi] {
            touch(*v, block_end[bi], class_of(*v));
        }
        for i in &b.insts {
            for u in i.uses() {
                touch(u, 2 * counter, class_of(u));
            }
            if let Some(d) = i.def() {
                touch(d, 2 * counter + 1, class_of(d));
            }
            counter += 1;
        }
        for u in b.term.uses() {
            touch(u, 2 * counter, class_of(u));
        }
        counter += 1;
    }

    // Mark call-crossing and parallel intervals.
    PARALLEL_SET.with(|s| s.borrow_mut().clear());
    for iv in ivs.values_mut() {
        iv.crosses_call = call_positions
            .iter()
            .any(|&c| iv.start < c && c < iv.end);
        iv.parallel = parallel_ranges
            .iter()
            .any(|&(s, e)| iv.start < e && s <= iv.end);
        if iv.parallel {
            PARALLEL_SET.with(|s| {
                s.borrow_mut().insert(iv.v);
            });
        }
    }
    ivs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_fn(n_vregs: usize, blocks: Vec<BlockIr>) -> IrFunction {
        IrFunction {
            name: "t".into(),
            params: vec![],
            vclass: vec![Class::Int; n_vregs],
            blocks,
            entry: 0,
            slots: vec![],
            ret: None,
            is_main: true,
        }
    }

    #[test]
    fn small_function_all_in_registers() {
        let mut f = simple_fn(
            4,
            vec![BlockIr {
                insts: vec![
                    Inst::Li { d: 0, imm: 1 },
                    Inst::Li { d: 1, imm: 2 },
                    Inst::Bin { op: BinK::Add, d: 2, a: Operand::V(0), b: Operand::V(1) },
                    Inst::Print { s: 2 },
                ],
                term: Term::Halt,
                parallel: false,
                src_line: 0,
            }],
        );
        let asg = allocate(&mut f).unwrap();
        assert!(asg.spill.is_empty());
        assert_eq!(asg.int_reg.len(), 3);
        // Distinct registers for overlapping values.
        assert_ne!(asg.reg(0), asg.reg(1));
    }

    #[test]
    fn non_overlapping_values_share_registers() {
        let mut insts = Vec::new();
        for k in 0..30u32 {
            insts.push(Inst::Li { d: k, imm: k as i32 });
            insts.push(Inst::Print { s: k });
        }
        let mut f = simple_fn(30, vec![BlockIr { insts, term: Term::Halt, parallel: false, src_line: 0 }]);
        let asg = allocate(&mut f).unwrap();
        assert!(asg.spill.is_empty());
        let distinct: std::collections::HashSet<Reg> = asg.int_reg.values().copied().collect();
        assert!(distinct.len() <= 2, "sequential lifetimes reuse registers");
    }

    #[test]
    fn serial_pressure_spills() {
        // 25 simultaneously-live values > 19 registers: must spill, not fail.
        let mut insts = Vec::new();
        for k in 0..25u32 {
            insts.push(Inst::Li { d: k, imm: k as i32 });
        }
        for k in 0..25u32 {
            insts.push(Inst::Print { s: k });
        }
        let mut f = simple_fn(25, vec![BlockIr { insts, term: Term::Halt, parallel: false, src_line: 0 }]);
        let asg = allocate(&mut f).unwrap();
        assert!(!asg.spill.is_empty());
        assert_eq!(asg.spill.len() + asg.int_reg.len(), 25);
        assert_eq!(f.slots.len(), asg.spill.len());
    }

    #[test]
    fn parallel_pressure_is_an_error() {
        // Same pressure inside a parallel block: the paper's spill error.
        let mut insts = Vec::new();
        for k in 0..25u32 {
            insts.push(Inst::Li { d: k, imm: k as i32 });
        }
        for k in 0..25u32 {
            insts.push(Inst::Print { s: k });
        }
        let mut f = simple_fn(25, vec![BlockIr { insts, term: Term::Halt, parallel: true, src_line: 0 }]);
        let err = allocate(&mut f).unwrap_err();
        assert!(matches!(err, CompileError::RegisterSpill { .. }));
    }

    #[test]
    fn call_crossing_values_use_callee_saved() {
        let mut f = simple_fn(
            3,
            vec![BlockIr {
                insts: vec![
                    Inst::Li { d: 0, imm: 7 },
                    Inst::Call { name: "g".into(), args: vec![], ret: None },
                    Inst::Print { s: 0 },
                ],
                term: Term::Halt,
                parallel: false,
                src_line: 0,
            }],
        );
        let asg = allocate(&mut f).unwrap();
        let r = asg.reg(0).unwrap();
        assert!(S_POOL.contains(&r), "value live across call in {r}");
        assert!(asg.used_s.contains(&r));
    }

    #[test]
    fn loop_carried_value_spans_loop() {
        // v0 defined in b0, used in loop body b1 which loops on itself.
        let mut f = simple_fn(
            2,
            vec![
                BlockIr {
                    insts: vec![Inst::Li { d: 0, imm: 3 }],
                    term: Term::Jmp(1),
                    parallel: false,
                    src_line: 0,
                },
                BlockIr {
                    insts: vec![Inst::Bin {
                        op: BinK::Sub,
                        d: 0,
                        a: Operand::V(0),
                        b: Operand::C(1),
                    }],
                    term: Term::Br { cond: 0, t: 1, f: 2 },
                    parallel: false,
                    src_line: 0,
                },
                BlockIr { insts: vec![], term: Term::Halt, parallel: false, src_line: 0 },
            ],
        );
        let asg = allocate(&mut f).unwrap();
        assert!(asg.reg(0).is_some());
    }

    #[test]
    fn float_allocation_independent() {
        let mut f = IrFunction {
            name: "t".into(),
            params: vec![],
            vclass: vec![Class::Float, Class::Float, Class::Int],
            blocks: vec![BlockIr {
                insts: vec![
                    Inst::FLi { d: 0, imm: 1.0 },
                    Inst::FLi { d: 1, imm: 2.0 },
                    Inst::FCmp { op: FCmpK::Lt, d: 2, a: 0, b: 1 },
                    Inst::Print { s: 2 },
                ],
                term: Term::Halt,
                parallel: false,
                src_line: 0,
            }],
            entry: 0,
            slots: vec![],
            ret: None,
            is_main: true,
        };
        let asg = allocate(&mut f).unwrap();
        assert!(asg.freg(0).is_some());
        assert!(asg.freg(1).is_some());
        assert_ne!(asg.freg(0), asg.freg(1));
        assert!(asg.reg(2).is_some());
    }
}
