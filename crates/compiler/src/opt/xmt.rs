//! XMT-specific transformations: memory fences and non-blocking stores.
//!
//! **Fences (paper §IV-A).** The XMT memory model preserves ordering of
//! memory operations only relative to prefix-sums. The compiler enforces
//! rule 2 by (a) issuing a memory fence before each prefix-sum operation
//! to wait until all pending writes complete, and (b) never moving memory
//! operations across prefix-sums (the scalar passes treat them as
//! barriers). As in the paper, the implementation "does not take into
//! account the base of prefix-sum operations and may be overly
//! conservative".
//!
//! **Non-blocking stores (§IV-C).** TCU stores need no reply: converting
//! them to `swnb` lets the thread continue immediately. Ordering to the
//! *same* address from the same TCU is preserved by the static routing of
//! the hardware (memory-model rule 1), so every parallel store is
//! eligible; the fences inserted above protect cross-thread consumers.
//! Master-side stores stay blocking (the master cache is cheap anyway).

use crate::ir::*;

/// Insert a `Fence` before every `ps`/`psm` in parallel blocks.
pub fn insert_fences(f: &mut IrFunction) {
    for b in &mut f.blocks {
        if !b.parallel {
            continue;
        }
        let mut out = Vec::with_capacity(b.insts.len());
        for inst in b.insts.drain(..) {
            let needs_fence = matches!(inst, Inst::Ps { .. } | Inst::Psm { .. });
            if needs_fence && !matches!(out.last(), Some(Inst::Fence)) {
                out.push(Inst::Fence);
            }
            out.push(inst);
        }
        b.insts = out;
    }
}

/// Convert stores in parallel blocks to non-blocking stores.
pub fn nonblocking_stores(f: &mut IrFunction) {
    for b in &mut f.blocks {
        if !b.parallel {
            continue;
        }
        for inst in &mut b.insts {
            match inst {
                Inst::St { nb, .. } | Inst::FSt { nb, .. } => *nb = true,
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par_func(insts: Vec<Inst>) -> IrFunction {
        IrFunction {
            name: "t".into(),
            params: vec![],
            vclass: vec![Class::Int; 8],
            blocks: vec![
                BlockIr { insts: insts.clone(), term: Term::Halt, parallel: true, src_line: 0 },
                BlockIr { insts, term: Term::Halt, parallel: false, src_line: 0 },
            ],
            entry: 0,
            slots: vec![],
            ret: None,
            is_main: false,
        }
    }

    #[test]
    fn fence_inserted_before_ps_and_psm_in_parallel_only() {
        let mut f = par_func(vec![
            Inst::St { s: 0, addr: 1, off: 0, nb: false },
            Inst::Ps { s_d: 2, gr: 1 },
            Inst::Psm { s_d: 3, addr: 1, off: 0 },
        ]);
        insert_fences(&mut f);
        let par = &f.blocks[0].insts;
        assert_eq!(par.len(), 5);
        assert!(matches!(par[1], Inst::Fence));
        assert!(matches!(par[3], Inst::Fence));
        // Serial block untouched.
        assert_eq!(f.blocks[1].insts.len(), 3);
    }

    #[test]
    fn no_double_fence_for_adjacent_prefix_sums() {
        let mut f = par_func(vec![Inst::Ps { s_d: 0, gr: 1 }, Inst::Ps { s_d: 1, gr: 1 }]);
        insert_fences(&mut f);
        let fences = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Fence))
            .count();
        assert_eq!(fences, 2); // one before each ps, but not duplicated
        assert_eq!(f.blocks[0].insts.len(), 4);
    }

    #[test]
    fn parallel_stores_become_nonblocking() {
        let mut f = par_func(vec![
            Inst::St { s: 0, addr: 1, off: 0, nb: false },
            Inst::FSt { s: 2, addr: 1, off: 4, nb: false },
        ]);
        nonblocking_stores(&mut f);
        assert!(matches!(f.blocks[0].insts[0], Inst::St { nb: true, .. }));
        assert!(matches!(f.blocks[0].insts[1], Inst::FSt { nb: true, .. }));
        // Serial block untouched.
        assert!(matches!(f.blocks[1].insts[0], Inst::St { nb: false, .. }));
    }
}
