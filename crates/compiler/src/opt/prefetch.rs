//! Compiler prefetch insertion (paper §IV-C, reference \[8\]).
//!
//! The shared first level of cache sits ~30 cycles away over the
//! interconnect, so consecutive blocking loads serialize round trips.
//! This pass batches independent loads within a (parallel) basic block:
//! address computations of later loads are hoisted above the first load
//! of the group and `pref` instructions are issued for them, so all the
//! round trips overlap and later loads hit the TCU prefetch buffer.
//!
//! Safety here is conservative and local, as in the paper's pass: a
//! group never extends across a store, `psm`, `fence` or call, and only
//! single-definition temporaries (the normal shape of lowered address
//! arithmetic) are hoisted.

use crate::ir::*;
use std::collections::HashMap;

/// Insert prefetches in all parallel blocks; returns the number of
/// `pref` instructions inserted.
pub fn insert_prefetches(f: &mut IrFunction, max_batch: usize) -> usize {
    // Count definitions per vreg across the whole function: only
    // single-def temporaries may be hoisted.
    let mut def_count: HashMap<V, u32> = HashMap::new();
    for b in &f.blocks {
        for i in &b.insts {
            if let Some(d) = i.def() {
                *def_count.entry(d).or_default() += 1;
            }
        }
    }
    let single_def = |v: V| def_count.get(&v).copied().unwrap_or(0) == 1;

    let mut inserted = 0;
    for b in &mut f.blocks {
        if !b.parallel {
            continue;
        }
        inserted += prefetch_block(b, max_batch, &single_def);
    }
    inserted
}

fn is_barrier(i: &Inst) -> bool {
    matches!(
        i,
        Inst::St { .. }
            | Inst::FSt { .. }
            | Inst::Psm { .. }
            | Inst::Ps { .. }
            | Inst::Fence
            | Inst::Call { .. }
            | Inst::Alloc { .. }
            | Inst::Tid { .. }
    )
}

fn is_plain_load(i: &Inst) -> Option<(V, i32)> {
    match i {
        Inst::Ld { addr, off, ro: false, volatile: false, .. } => Some((*addr, *off)),
        Inst::FLd { addr, off, .. } => Some((*addr, *off)),
        _ => None,
    }
}

fn prefetch_block(b: &mut BlockIr, max_batch: usize, single_def: &dyn Fn(V) -> bool) -> usize {
    // Find the first group: first load index.
    let mut inserted = 0;
    let mut start = 0usize;
    loop {
        let insts = &b.insts;
        let Some(i0) = (start..insts.len()).find(|&k| is_plain_load(&insts[k]).is_some())
        else {
            break;
        };
        // Collect later loads eligible for this group.
        let mut hoist: Vec<usize> = Vec::new(); // instruction indices to copy above i0
        let mut prefs: Vec<(V, i32)> = Vec::new();
        let mut k = i0 + 1;
        while k < insts.len() && prefs.len() + 1 < max_batch {
            if is_barrier(&insts[k]) {
                break;
            }
            if let Some((addr, off)) = is_plain_load(&insts[k]) {
                // Is the address computable at i0 (possibly by hoisting)?
                let mut extra: Vec<usize> = Vec::new();
                if addr_available(insts, addr, i0, k, single_def, &mut extra) {
                    for e in extra {
                        if !hoist.contains(&e) {
                            hoist.push(e);
                        }
                    }
                    if !prefs.contains(&(addr, off)) {
                        // Don't prefetch what the first load already fetches.
                        let first = is_plain_load(&insts[i0]).unwrap();
                        if (addr, off) != first {
                            prefs.push((addr, off));
                        }
                    }
                }
            }
            k += 1;
        }
        if prefs.is_empty() {
            start = i0 + 1;
            continue;
        }
        // Apply: move hoisted instructions (in original order) to just
        // before i0, then insert the prefs.
        hoist.sort_unstable();
        let mut new_insts: Vec<Inst> = Vec::with_capacity(b.insts.len() + prefs.len());
        new_insts.extend_from_slice(&b.insts[..i0]);
        for &h in &hoist {
            new_insts.push(b.insts[h].clone());
        }
        for &(addr, off) in &prefs {
            new_insts.push(Inst::Pref { addr, off });
            inserted += 1;
        }
        for (k2, inst) in b.insts[i0..].iter().enumerate() {
            if hoist.contains(&(i0 + k2)) {
                continue; // moved up
            }
            new_insts.push(inst.clone());
        }
        let group_end = i0 + hoist.len() + prefs.len() + (k - i0);
        b.insts = new_insts;
        start = group_end.min(b.insts.len());
    }
    inserted
}

/// Can `addr`'s value be made available at position `i0` (its use is at
/// `use_pos`)? Either it is defined before `i0`, or its (single)
/// definition between `i0..use_pos` is pure and recursively hoistable —
/// those definition indices are appended to `extra`.
fn addr_available(
    insts: &[Inst],
    addr: V,
    i0: usize,
    use_pos: usize,
    single_def: &dyn Fn(V) -> bool,
    extra: &mut Vec<usize>,
) -> bool {
    fn go(
        insts: &[Inst],
        v: V,
        i0: usize,
        use_pos: usize,
        single_def: &dyn Fn(V) -> bool,
        extra: &mut Vec<usize>,
        depth: u32,
    ) -> bool {
        if depth > 6 {
            return false;
        }
        let dp = (0..use_pos).rev().find(|&k| insts[k].def() == Some(v));
        match dp {
            None => true,                 // live-in: defined before the block
            Some(p) if p < i0 => true,    // already above the group head
            Some(p) => {
                if !insts[p].is_pure() || !single_def(v) {
                    return false;
                }
                for u in insts[p].uses() {
                    if !go(insts, u, i0, p, single_def, extra, depth + 1) {
                        return false;
                    }
                }
                if !extra.contains(&p) {
                    extra.push(p);
                }
                true
            }
        }
    }
    go(insts, addr, i0, use_pos, single_def, extra, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn par_func(insts: Vec<Inst>, nv: usize) -> IrFunction {
        IrFunction {
            name: "t".into(),
            params: vec![],
            vclass: vec![Class::Int; nv],
            blocks: vec![BlockIr { insts, term: Term::Halt, parallel: true, src_line: 0 }],
            entry: 0,
            slots: vec![],
            ret: None,
            is_main: false,
        }
    }

    #[test]
    fn batches_two_independent_loads() {
        // a1 = base+x; load1; a2 = base+y; load2
        let mut f = par_func(
            vec![
                Inst::Bin { op: BinK::Add, d: 2, a: Operand::V(0), b: Operand::V(1) },
                Inst::Ld { d: 3, addr: 2, off: 0, ro: false, volatile: false },
                Inst::Bin { op: BinK::Add, d: 4, a: Operand::V(0), b: Operand::C(64) },
                Inst::Ld { d: 5, addr: 4, off: 0, ro: false, volatile: false },
            ],
            8,
        );
        let n = insert_prefetches(&mut f, 8);
        assert_eq!(n, 1);
        let insts = &f.blocks[0].insts;
        // Hoisted addr computation and pref appear before the first load.
        let pref_pos = insts.iter().position(|i| matches!(i, Inst::Pref { .. })).unwrap();
        let load1_pos = insts
            .iter()
            .position(|i| matches!(i, Inst::Ld { d: 3, .. }))
            .unwrap();
        let addr2_pos = insts
            .iter()
            .position(|i| matches!(i, Inst::Bin { d: 4, .. }))
            .unwrap();
        assert!(addr2_pos < pref_pos);
        assert!(pref_pos < load1_pos);
    }

    #[test]
    fn group_stops_at_store() {
        let mut f = par_func(
            vec![
                Inst::Ld { d: 1, addr: 0, off: 0, ro: false, volatile: false },
                Inst::St { s: 1, addr: 0, off: 4, nb: false },
                Inst::Ld { d: 2, addr: 0, off: 8, ro: false, volatile: false },
            ],
            8,
        );
        let n = insert_prefetches(&mut f, 8);
        assert_eq!(n, 0, "store is a barrier: no batching across it");
    }

    #[test]
    fn volatile_and_ro_loads_not_batched() {
        let mut f = par_func(
            vec![
                Inst::Ld { d: 1, addr: 0, off: 0, ro: false, volatile: false },
                Inst::Ld { d: 2, addr: 0, off: 4, ro: false, volatile: true },
                Inst::Ld { d: 3, addr: 0, off: 8, ro: true, volatile: false },
            ],
            8,
        );
        let n = insert_prefetches(&mut f, 8);
        assert_eq!(n, 0);
    }

    #[test]
    fn batch_size_respected() {
        let insts: Vec<Inst> = (0..6)
            .map(|k| Inst::Ld { d: 10 + k, addr: 0, off: 4 * k as i32, ro: false, volatile: false })
            .collect();
        let mut f = par_func(insts, 20);
        let n = insert_prefetches(&mut f, 3);
        // First group: first load + 2 prefetched = batch of 3; then the
        // pass continues on the remaining loads.
        assert!(n >= 2, "inserted {n}");
        let prefs = f.blocks[0]
            .insts
            .iter()
            .filter(|i| matches!(i, Inst::Pref { .. }))
            .count();
        assert_eq!(prefs, n);
    }

    #[test]
    fn serial_blocks_untouched() {
        let mut f = par_func(
            vec![
                Inst::Ld { d: 1, addr: 0, off: 0, ro: false, volatile: false },
                Inst::Ld { d: 2, addr: 0, off: 4, ro: false, volatile: false },
            ],
            8,
        );
        f.blocks[0].parallel = false;
        assert_eq!(insert_prefetches(&mut f, 8), 0);
    }
}
