//! Local (per-block) copy propagation and common-subexpression
//! elimination.
//!
//! Both passes respect the XMT memory model obligations (§IV-A):
//! `ps`, `psm` and `fence` kill all memory-dependent facts, so no load is
//! ever reused across a prefix-sum, and `volatile` loads are never
//! coalesced at all.

use crate::ir::*;
use std::collections::HashMap;

/// Replace uses of `Mov` destinations by their sources within blocks.
pub fn copy_propagate(f: &mut IrFunction) {
    for b in &mut f.blocks {
        let mut copies: HashMap<V, V> = HashMap::new();
        let resolve = |copies: &HashMap<V, V>, v: V| -> V {
            let mut v = v;
            let mut depth = 0;
            while let Some(&s) = copies.get(&v) {
                v = s;
                depth += 1;
                if depth > 32 {
                    break;
                }
            }
            v
        };
        for inst in &mut b.insts {
            // Rewrite uses first.
            rewrite_uses(inst, |v| resolve(&copies, v));
            // Kill facts about the redefined register.
            if let Some(d) = inst.def() {
                copies.remove(&d);
                copies.retain(|_, s| *s != d);
            }
            // Learn new copies.
            match inst {
                Inst::Mov { d, s } | Inst::FMov { d, s } if d != s => {
                    copies.insert(*d, *s);
                }
                _ => {}
            }
        }
        // Terminator uses.
        let copies_ref = &copies;
        match &mut b.term {
            Term::Br { cond, .. } => *cond = resolve(copies_ref, *cond),
            Term::Ret(Some(v)) => *v = resolve(copies_ref, *v),
            Term::SpawnStart { lo, hi, .. } => {
                *lo = resolve(copies_ref, *lo);
                *hi = resolve(copies_ref, *hi);
            }
            _ => {}
        }
    }
}

/// Local CSE over pure operations and (non-volatile) loads.
pub fn cse(f: &mut IrFunction) {
    for b in &mut f.blocks {
        cse_block(b);
    }
}

#[derive(PartialEq, Clone)]
enum Key {
    Bin(BinK, Operand, Operand),
    FBin(FBinK, V, V),
    Li(i32),
    FLi(u32),
    La(String),
    SlotAddr(u32),
    Cvt(bool, V),
    FCmp(FCmpK, V, V),
    Load(V, i32),
    FLoad(V, i32),
}

fn cse_block(b: &mut BlockIr) {
    // available value -> defining vreg
    let mut avail: Vec<(Key, V)> = Vec::new();
    let mut replaced: HashMap<V, V> = HashMap::new();

    let kill_reg = |avail: &mut Vec<(Key, V)>, d: V| {
        avail.retain(|(k, v)| {
            if *v == d {
                return false;
            }
            !match k {
                Key::Bin(_, a, bb) => a.as_v() == Some(d) || bb.as_v() == Some(d),
                Key::FBin(_, a, bb) | Key::FCmp(_, a, bb) => *a == d || *bb == d,
                Key::Cvt(_, s) => *s == d,
                Key::Load(a, _) | Key::FLoad(a, _) => *a == d,
                _ => false,
            }
        });
    };
    let kill_memory = |avail: &mut Vec<(Key, V)>| {
        avail.retain(|(k, _)| !matches!(k, Key::Load(..) | Key::FLoad(..)));
    };

    for inst in &mut b.insts {
        rewrite_uses(inst, |v| *replaced.get(&v).unwrap_or(&v));

        let key = match inst {
            Inst::Bin { op, a, b, .. } => Some(Key::Bin(*op, *a, *b)),
            Inst::FBin { op, a, b, .. } => Some(Key::FBin(*op, *a, *b)),
            Inst::Li { imm, .. } => Some(Key::Li(*imm)),
            Inst::FLi { imm, .. } => Some(Key::FLi(imm.to_bits())),
            Inst::La { symbol, .. } => Some(Key::La(symbol.clone())),
            Inst::SlotAddr { slot, .. } => Some(Key::SlotAddr(*slot)),
            Inst::CvtIF { s, .. } => Some(Key::Cvt(true, *s)),
            Inst::CvtFI { s, .. } => Some(Key::Cvt(false, *s)),
            Inst::FCmp { op, a, b, .. } => Some(Key::FCmp(*op, *a, *b)),
            Inst::Ld { addr, off, volatile: false, .. } => Some(Key::Load(*addr, *off)),
            Inst::FLd { addr, off, .. } => Some(Key::FLoad(*addr, *off)),
            _ => None,
        };

        if let (Some(key), Some(d)) = (key.clone(), inst.def()) {
            if let Some((_, prev)) = avail.iter().find(|(k, _)| *k == key) {
                let prev = *prev;
                // Only safe if `prev` hasn't been redefined since — the
                // kill logic guarantees that. But the destination may be
                // live elsewhere (non-SSA), so keep the def as a move.
                let is_float = matches!(
                    inst,
                    Inst::FBin { .. } | Inst::FLi { .. } | Inst::FLd { .. } | Inst::CvtIF { .. }
                );
                *inst = if is_float {
                    Inst::FMov { d, s: prev }
                } else {
                    Inst::Mov { d, s: prev }
                };
                replaced.insert(d, prev);
                kill_reg(&mut avail, d);
                continue;
            }
        }

        // Effects on available facts.
        match inst {
            Inst::St { .. } | Inst::FSt { .. } | Inst::Psm { .. } | Inst::Fence
            | Inst::Call { .. } | Inst::Alloc { .. } => kill_memory(&mut avail),
            Inst::Ps { .. } | Inst::GrPut { .. } => kill_memory(&mut avail),
            _ => {}
        }
        if let Some(d) = inst.def() {
            kill_reg(&mut avail, d);
            replaced.remove(&d);
            replaced.retain(|_, s| *s != d);
            if let Some(key) = key {
                avail.push((key, d));
            }
        }
    }
    // Fix terminator uses.
    match &mut b.term {
        Term::Br { cond, .. } => {
            if let Some(s) = replaced.get(cond) {
                *cond = *s;
            }
        }
        Term::Ret(Some(v)) => {
            if let Some(s) = replaced.get(v) {
                *v = *s;
            }
        }
        Term::SpawnStart { lo, hi, .. } => {
            if let Some(s) = replaced.get(lo) {
                *lo = *s;
            }
            if let Some(s) = replaced.get(hi) {
                *hi = *s;
            }
        }
        _ => {}
    }
}

/// Rewrite every vreg use in an instruction.
fn rewrite_uses(inst: &mut Inst, f: impl Fn(V) -> V) {
    use Inst::*;
    match inst {
        Bin { a, b, .. } => {
            if let Operand::V(v) = a {
                *v = f(*v);
            }
            if let Operand::V(v) = b {
                *v = f(*v);
            }
        }
        FBin { a, b, .. } | FCmp { a, b, .. } => {
            *a = f(*a);
            *b = f(*b);
        }
        Mov { s, .. } | FMov { s, .. } | FNeg { s, .. } | CvtIF { s, .. } | CvtFI { s, .. }
        | GrPut { s, .. } | Print { s } | PrintF { s } | PrintC { s } => *s = f(*s),
        Ld { addr, .. } | FLd { addr, .. } | Pref { addr, .. } => *addr = f(*addr),
        St { s, addr, .. } | FSt { s, addr, .. } => {
            *s = f(*s);
            *addr = f(*addr);
        }
        Psm { addr, .. } => {
            // `s_d` is both a use and a def held in one field: rewriting
            // it would redirect the *definition* to another vreg. Leave
            // it alone; only the address operand is a pure use.
            *addr = f(*addr);
        }
        Ps { .. } => {}
        Call { args, .. } => {
            for a in args {
                *a = f(*a);
            }
        }
        Alloc { size, .. } => *size = f(*size),
        Li { .. } | FLi { .. } | Tid { .. } | La { .. } | SlotAddr { .. } | Fence
        | GrGet { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func_with(insts: Vec<Inst>) -> IrFunction {
        IrFunction {
            name: "t".into(),
            params: vec![],
            vclass: vec![Class::Int; 32],
            blocks: vec![BlockIr { insts, term: Term::Halt, parallel: false, src_line: 0 }],
            entry: 0,
            slots: vec![],
            ret: None,
            is_main: true,
        }
    }

    #[test]
    fn copies_propagate_into_uses() {
        let mut f = func_with(vec![
            Inst::Li { d: 0, imm: 3 },
            Inst::Mov { d: 1, s: 0 },
            Inst::Bin { op: BinK::Add, d: 2, a: Operand::V(1), b: Operand::V(1) },
        ]);
        copy_propagate(&mut f);
        assert_eq!(
            f.blocks[0].insts[2],
            Inst::Bin { op: BinK::Add, d: 2, a: Operand::V(0), b: Operand::V(0) }
        );
    }

    #[test]
    fn copy_killed_by_source_redefinition() {
        let mut f = func_with(vec![
            Inst::Mov { d: 1, s: 0 },
            Inst::Li { d: 0, imm: 9 }, // kills the copy
            Inst::Print { s: 1 },
        ]);
        copy_propagate(&mut f);
        assert_eq!(f.blocks[0].insts[2], Inst::Print { s: 1 });
    }

    #[test]
    fn cse_reuses_pure_computation() {
        let mut f = func_with(vec![
            Inst::Bin { op: BinK::Add, d: 2, a: Operand::V(0), b: Operand::V(1) },
            Inst::Bin { op: BinK::Add, d: 3, a: Operand::V(0), b: Operand::V(1) },
        ]);
        cse(&mut f);
        assert_eq!(f.blocks[0].insts[1], Inst::Mov { d: 3, s: 2 });
    }

    #[test]
    fn cse_load_killed_by_store_and_psm() {
        let mut f = func_with(vec![
            Inst::Ld { d: 1, addr: 0, off: 0, ro: false, volatile: false },
            Inst::St { s: 5, addr: 0, off: 0, nb: false },
            Inst::Ld { d: 2, addr: 0, off: 0, ro: false, volatile: false },
            Inst::Psm { s_d: 6, addr: 0, off: 0 },
            Inst::Ld { d: 3, addr: 0, off: 0, ro: false, volatile: false },
        ]);
        cse(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::Ld { .. }));
        assert!(matches!(f.blocks[0].insts[4], Inst::Ld { .. }));
    }

    #[test]
    fn cse_reuses_load_when_safe() {
        let mut f = func_with(vec![
            Inst::Ld { d: 1, addr: 0, off: 4, ro: false, volatile: false },
            Inst::Ld { d: 2, addr: 0, off: 4, ro: false, volatile: false },
        ]);
        cse(&mut f);
        assert_eq!(f.blocks[0].insts[1], Inst::Mov { d: 2, s: 1 });
    }

    #[test]
    fn volatile_loads_never_coalesce() {
        let mut f = func_with(vec![
            Inst::Ld { d: 1, addr: 0, off: 0, ro: false, volatile: true },
            Inst::Ld { d: 2, addr: 0, off: 0, ro: false, volatile: true },
        ]);
        cse(&mut f);
        assert!(matches!(f.blocks[0].insts[1], Inst::Ld { .. }));
    }

    #[test]
    fn cse_respects_operand_redefinition() {
        let mut f = func_with(vec![
            Inst::Bin { op: BinK::Add, d: 2, a: Operand::V(0), b: Operand::V(1) },
            Inst::Li { d: 0, imm: 7 },
            Inst::Bin { op: BinK::Add, d: 3, a: Operand::V(0), b: Operand::V(1) },
        ]);
        cse(&mut f);
        assert!(matches!(f.blocks[0].insts[2], Inst::Bin { .. }));
    }
}
