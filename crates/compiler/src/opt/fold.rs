//! Constant folding and algebraic simplification (per basic block).
//!
//! Virtual registers defined by `Li` are tracked within each block;
//! integer operands are replaced by constants, fully-constant operations
//! are evaluated, and multiplications by powers of two become shifts
//! (the MDU is a shared, contended resource — paper Fig. 1 — so trading
//! a `mul` for a per-TCU shift is a real win).

use crate::ir::*;
use std::collections::HashMap;

/// Run folding over every block of a function.
pub fn run(f: &mut IrFunction) {
    for b in &mut f.blocks {
        fold_block(b);
    }
}

fn fold_block(b: &mut BlockIr) {
    // vreg -> known constant, valid until redefinition.
    let mut known: HashMap<V, i32> = HashMap::new();
    for inst in &mut b.insts {
        // Replace operands with constants where known.
        if let Inst::Bin { a, b: ob, .. } = inst {
            if let Operand::V(v) = a {
                if let Some(c) = known.get(v) {
                    *a = Operand::C(*c);
                }
            }
            if let Operand::V(v) = ob {
                if let Some(c) = known.get(v) {
                    *ob = Operand::C(*c);
                }
            }
        }
        // Evaluate / simplify.
        if let Inst::Bin { op, d, a, b: ob } = inst.clone() {
            match (a, ob) {
                (Operand::C(x), Operand::C(y)) => {
                    if let Some(v) = eval(op, x, y) {
                        *inst = Inst::Li { d, imm: v };
                    }
                }
                (Operand::V(x), Operand::C(y)) => {
                    if let Some(s) = simplify_vc(op, d, x, y) {
                        *inst = s;
                    }
                }
                (Operand::C(x), Operand::V(y)) => {
                    if let Some(s) = simplify_cv(op, d, x, y) {
                        *inst = s;
                    }
                }
                _ => {}
            }
        }
        // Update known-constant map.
        match inst {
            Inst::Li { d, imm } => {
                known.insert(*d, *imm);
            }
            other => {
                if let Some(d) = other.def() {
                    known.remove(&d);
                }
            }
        }
    }
}

fn eval(op: BinK, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        BinK::Add => a.wrapping_add(b),
        BinK::Sub => a.wrapping_sub(b),
        BinK::Mul => a.wrapping_mul(b),
        BinK::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinK::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinK::And => a & b,
        BinK::Or => a | b,
        BinK::Xor => a ^ b,
        BinK::Shl => ((a as u32) << (b as u32 & 31)) as i32,
        BinK::Sra => a >> (b as u32 & 31),
        BinK::Srl => ((a as u32) >> (b as u32 & 31)) as i32,
        BinK::Slt => (a < b) as i32,
        BinK::Sltu => ((a as u32) < b as u32) as i32,
        BinK::Seq => (a == b) as i32,
        BinK::Sne => (a != b) as i32,
        BinK::Sle => (a <= b) as i32,
        BinK::Sgt => (a > b) as i32,
        BinK::Sge => (a >= b) as i32,
    })
}

/// Simplify `d = x op const`.
fn simplify_vc(op: BinK, d: V, x: V, y: i32) -> Option<Inst> {
    match (op, y) {
        (BinK::Add | BinK::Sub | BinK::Or | BinK::Xor | BinK::Shl | BinK::Sra | BinK::Srl, 0) => {
            Some(Inst::Mov { d, s: x })
        }
        (BinK::Mul, 0) | (BinK::And, 0) => Some(Inst::Li { d, imm: 0 }),
        (BinK::Mul, 1) | (BinK::Div, 1) => Some(Inst::Mov { d, s: x }),
        (BinK::Mul, m) if m > 0 && (m as u32).is_power_of_two() => Some(Inst::Bin {
            op: BinK::Shl,
            d,
            a: Operand::V(x),
            b: Operand::C((m as u32).trailing_zeros() as i32),
        }),
        (BinK::Rem, 1) => Some(Inst::Li { d, imm: 0 }),
        _ => None,
    }
}

/// Simplify `d = const op x`.
fn simplify_cv(op: BinK, d: V, x: i32, y: V) -> Option<Inst> {
    match (op, x) {
        (BinK::Add | BinK::Or | BinK::Xor, 0) => Some(Inst::Mov { d, s: y }),
        (BinK::Mul, 0) | (BinK::And, 0) => Some(Inst::Li { d, imm: 0 }),
        (BinK::Mul, 1) => Some(Inst::Mov { d, s: y }),
        (BinK::Mul, m) if m > 0 && (m as u32).is_power_of_two() => Some(Inst::Bin {
            op: BinK::Shl,
            d,
            a: Operand::V(y),
            b: Operand::C((m as u32).trailing_zeros() as i32),
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func_with(insts: Vec<Inst>) -> IrFunction {
        IrFunction {
            name: "t".into(),
            params: vec![],
            vclass: vec![Class::Int; 16],
            blocks: vec![BlockIr { insts, term: Term::Halt, parallel: false, src_line: 0 }],
            entry: 0,
            slots: vec![],
            ret: None,
            is_main: true,
        }
    }

    #[test]
    fn folds_constants_through_chain() {
        let mut f = func_with(vec![
            Inst::Li { d: 0, imm: 6 },
            Inst::Li { d: 1, imm: 7 },
            Inst::Bin { op: BinK::Mul, d: 2, a: Operand::V(0), b: Operand::V(1) },
            Inst::Bin { op: BinK::Add, d: 3, a: Operand::V(2), b: Operand::C(8) },
        ]);
        run(&mut f);
        assert_eq!(f.blocks[0].insts[2], Inst::Li { d: 2, imm: 42 });
        assert_eq!(f.blocks[0].insts[3], Inst::Li { d: 3, imm: 50 });
    }

    #[test]
    fn mul_by_pow2_becomes_shift() {
        let mut f = func_with(vec![Inst::Bin {
            op: BinK::Mul,
            d: 1,
            a: Operand::V(0),
            b: Operand::C(8),
        }]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[0],
            Inst::Bin { op: BinK::Shl, d: 1, a: Operand::V(0), b: Operand::C(3) }
        );
    }

    #[test]
    fn identities_become_moves() {
        let mut f = func_with(vec![
            Inst::Bin { op: BinK::Add, d: 1, a: Operand::V(0), b: Operand::C(0) },
            Inst::Bin { op: BinK::Mul, d: 2, a: Operand::V(0), b: Operand::C(0) },
        ]);
        run(&mut f);
        assert_eq!(f.blocks[0].insts[0], Inst::Mov { d: 1, s: 0 });
        assert_eq!(f.blocks[0].insts[1], Inst::Li { d: 2, imm: 0 });
    }

    #[test]
    fn redefinition_invalidates_constants() {
        // v0 = 5; v0 = load; v1 = v0 + 1 — must NOT fold v1 to 6.
        let mut f = func_with(vec![
            Inst::Li { d: 0, imm: 5 },
            Inst::Ld { d: 0, addr: 3, off: 0, ro: false, volatile: false },
            Inst::Bin { op: BinK::Add, d: 1, a: Operand::V(0), b: Operand::C(1) },
        ]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts[2],
            Inst::Bin { op: BinK::Add, d: 1, a: Operand::V(0), b: Operand::C(1) }
        );
    }

    #[test]
    fn division_by_zero_constant_folds_to_zero() {
        // The simulator defines x/0 = 0; folding must agree.
        let mut f = func_with(vec![Inst::Bin {
            op: BinK::Div,
            d: 1,
            a: Operand::C(9),
            b: Operand::C(0),
        }]);
        run(&mut f);
        assert_eq!(f.blocks[0].insts[0], Inst::Li { d: 1, imm: 0 });
    }
}
