//! Optimization passes of the core-pass.
//!
//! Classic scalar optimizations (constant folding, local copy
//! propagation + common-subexpression elimination, dead-code
//! elimination) plus the XMT-specific passes of paper §IV:
//!
//! * [`xmt::insert_fences`] — a memory fence before every prefix-sum, the
//!   compiler half of the XMT memory model (§IV-A);
//! * [`xmt::nonblocking_stores`] — convert parallel-code stores into
//!   non-blocking stores (§IV-C);
//! * [`prefetch::insert_prefetches`] — batch independent loads behind
//!   prefetches into the TCU prefetch buffers (§IV-C, ref \[8\]).
//!
//! All scalar passes treat `ps`/`psm`/`fence` as barriers: memory
//! operations are never moved or coalesced across a prefix-sum, the
//! second compiler obligation of the memory model.

pub mod dce;
pub mod fold;
pub mod localopt;
pub mod prefetch;
pub mod xmt;

use crate::ir::Module;
use crate::Options;

/// Run the configured pass pipeline over a module.
pub fn optimize(module: &mut Module, opts: &Options) {
    for f in &mut module.functions {
        if opts.opt_level >= 1 {
            fold::run(f);
            localopt::copy_propagate(f);
            localopt::cse(f);
            dce::run(f);
        }
        if opts.opt_level >= 2 {
            // A second round catches opportunities exposed by DCE.
            fold::run(f);
            localopt::copy_propagate(f);
            localopt::cse(f);
            dce::run(f);
        }
        // XMT-specific passes (ordering matters: fences first, so the
        // non-blocking conversion and prefetching see final positions).
        if opts.fences {
            xmt::insert_fences(f);
        }
        if opts.nb_stores {
            xmt::nonblocking_stores(f);
        }
        if opts.prefetch && opts.prefetch_batch >= 2 {
            prefetch::insert_prefetches(f, opts.prefetch_batch as usize);
        }
    }
}
