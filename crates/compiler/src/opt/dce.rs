//! Dead-code elimination.
//!
//! Removes pure instructions whose results are never used (anywhere in
//! the function — the IR is not SSA, so use counts are global), and
//! iterates until a fixed point since removing one dead instruction can
//! make its operands' definitions dead too. Unreachable blocks are also
//! emptied.

use crate::ir::*;
use std::collections::HashSet;

/// Run DCE on one function.
pub fn run(f: &mut IrFunction) {
    remove_unreachable(f);
    loop {
        let mut used: HashSet<V> = HashSet::new();
        for b in &f.blocks {
            for i in &b.insts {
                used.extend(i.uses());
            }
            used.extend(b.term.uses());
        }
        // Params are ABI-live (their defs are the prologue).
        let mut changed = false;
        for b in &mut f.blocks {
            b.insts.retain(|i| {
                let dead = i.is_pure() && i.def().is_some_and(|d| !used.contains(&d));
                if dead {
                    changed = true;
                }
                !dead
            });
        }
        if !changed {
            break;
        }
    }
}

/// Empty blocks that no path reaches (they keep their slot so block ids
/// stay stable, but cost nothing downstream).
fn remove_unreachable(f: &mut IrFunction) {
    let mut reach = vec![false; f.blocks.len()];
    let mut stack = vec![f.entry];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reach[b as usize], true) {
            continue;
        }
        for s in f.blocks[b as usize].term.succs() {
            stack.push(s);
        }
    }
    for (k, b) in f.blocks.iter_mut().enumerate() {
        if !reach[k] {
            b.insts.clear();
            b.term = Term::Jmp(k as Bb); // harmless self-loop, never emitted
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn func(blocks: Vec<BlockIr>) -> IrFunction {
        IrFunction {
            name: "t".into(),
            params: vec![],
            vclass: vec![Class::Int; 32],
            blocks,
            entry: 0,
            slots: vec![],
            ret: None,
            is_main: true,
        }
    }

    #[test]
    fn removes_dead_chains() {
        let mut f = func(vec![BlockIr {
            insts: vec![
                Inst::Li { d: 0, imm: 1 },                                        // dead chain
                Inst::Bin { op: BinK::Add, d: 1, a: Operand::V(0), b: Operand::C(2) }, // dead
                Inst::Li { d: 2, imm: 5 },
                Inst::Print { s: 2 }, // keeps v2 alive
            ],
            term: Term::Halt,
            parallel: false,
            src_line: 0,
        }]);
        run(&mut f);
        assert_eq!(
            f.blocks[0].insts,
            vec![Inst::Li { d: 2, imm: 5 }, Inst::Print { s: 2 }]
        );
    }

    #[test]
    fn side_effects_always_kept() {
        let mut f = func(vec![BlockIr {
            insts: vec![
                Inst::St { s: 0, addr: 1, off: 0, nb: false },
                Inst::Psm { s_d: 2, addr: 1, off: 0 }, // result unused but effectful
                Inst::Ld { d: 3, addr: 1, off: 0, ro: false, volatile: false },
            ],
            term: Term::Halt,
            parallel: false,
            src_line: 0,
        }]);
        run(&mut f);
        // The load's result is unused but loads are not pure in our IR
        // conservatism? They are non-pure (is_pure() false) so kept.
        assert_eq!(f.blocks[0].insts.len(), 3);
    }

    #[test]
    fn terminator_uses_keep_values() {
        let mut f = func(vec![
            BlockIr {
                insts: vec![Inst::Li { d: 0, imm: 1 }],
                term: Term::Br { cond: 0, t: 1, f: 1 },
                parallel: false,
                src_line: 0,
            },
            BlockIr { insts: vec![], term: Term::Halt, parallel: false, src_line: 0 },
        ]);
        run(&mut f);
        assert_eq!(f.blocks[0].insts.len(), 1);
    }

    #[test]
    fn unreachable_blocks_emptied() {
        let mut f = func(vec![
            BlockIr { insts: vec![], term: Term::Halt, parallel: false, src_line: 0 },
            BlockIr {
                insts: vec![Inst::Li { d: 0, imm: 9 }, Inst::Print { s: 0 }],
                term: Term::Halt,
                parallel: false,
                src_line: 0,
            },
        ]);
        run(&mut f);
        assert!(f.blocks[1].insts.is_empty());
    }
}
