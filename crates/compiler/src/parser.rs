//! Recursive-descent parser for XMTC.
//!
//! The grammar is the C subset of the paper's examples (Fig. 2a, Fig. 8)
//! plus the XMT constructs: `spawn(lo, hi) { ... }`, `$`, `ps`, `psm`,
//! and the `volatile`/`const` qualifiers on globals.

use crate::ast::*;
use crate::lexer::{lex, LexError, Span, Tok, Token};
use std::fmt;

/// Parse error with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub span: Span,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { span: e.span, message: e.message }
    }
}

/// Parse a whole XMTC translation unit.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    Parser { toks, pos: 0 }.program()
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<Span, ParseError> {
        if self.peek() == t {
            Ok(self.bump().span)
        } else {
            Err(self.err(format!("expected `{t}`, found `{}`", self.peek())))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { span: self.span(), message }
    }

    fn ident(&mut self) -> Result<(String, Span), ParseError> {
        let span = self.span();
        match self.bump().tok {
            Tok::Ident(s) => Ok((s, span)),
            other => Err(ParseError { span, message: format!("expected identifier, found `{other}`") }),
        }
    }

    // ---------------- types ----------------

    fn is_type_start(&self) -> bool {
        matches!(self.peek(), Tok::KwInt | Tok::KwFloat | Tok::KwVoid)
    }

    fn base_type(&mut self) -> Result<Type, ParseError> {
        let t = match self.peek() {
            Tok::KwInt => Type::Int,
            Tok::KwFloat => Type::Float,
            Tok::KwVoid => Type::Void,
            other => return Err(self.err(format!("expected type, found `{other}`"))),
        };
        self.bump();
        Ok(t)
    }

    fn full_type(&mut self) -> Result<Type, ParseError> {
        let mut t = self.base_type()?;
        while self.eat(&Tok::Star) {
            t = t.ptr();
        }
        Ok(t)
    }

    // ---------------- top level ----------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while *self.peek() != Tok::Eof {
            let mut volatile = false;
            let mut is_const = false;
            loop {
                if self.eat(&Tok::KwVolatile) {
                    volatile = true;
                } else if self.eat(&Tok::KwConst) {
                    is_const = true;
                } else {
                    break;
                }
            }
            if !self.is_type_start() {
                return Err(self.err(format!(
                    "expected declaration, found `{}`",
                    self.peek()
                )));
            }
            let ty = self.full_type()?;
            let (name, span) = self.ident()?;
            if *self.peek() == Tok::LParen {
                if volatile || is_const {
                    return Err(self.err("qualifiers are not allowed on functions".into()));
                }
                prog.functions.push(self.function(ty, name, span)?);
            } else {
                prog.globals.push(self.global(ty, name, span, volatile, is_const)?);
                // Allow `int a, b;` at global scope.
                while self.eat(&Tok::Comma) {
                    let (name2, span2) = self.ident()?;
                    prog.globals
                        .push(self.global_tail(prog_last_base(&prog), name2, span2, volatile, is_const)?);
                }
                self.expect(&Tok::Semi)?;
            }
        }
        Ok(prog)
    }

    fn global(
        &mut self,
        ty: Type,
        name: String,
        span: Span,
        volatile: bool,
        is_const: bool,
    ) -> Result<GlobalDecl, ParseError> {
        let mut array = None;
        if self.eat(&Tok::LBracket) {
            array = Some(self.const_u32()?);
            self.expect(&Tok::RBracket)?;
        }
        let init = if self.eat(&Tok::Assign) { Some(self.global_init()?) } else { None };
        Ok(GlobalDecl { name, ty, array, init, volatile, is_const, span })
    }

    fn global_tail(
        &mut self,
        ty: Type,
        name: String,
        span: Span,
        volatile: bool,
        is_const: bool,
    ) -> Result<GlobalDecl, ParseError> {
        self.global(ty, name, span, volatile, is_const)
    }

    fn global_init(&mut self) -> Result<GlobalInit, ParseError> {
        if self.eat(&Tok::LBrace) {
            let mut vals = Vec::new();
            if *self.peek() != Tok::RBrace {
                loop {
                    vals.push(self.const_number()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Tok::RBrace)?;
            Ok(GlobalInit::List(vals))
        } else {
            Ok(GlobalInit::Scalar(self.const_number()?))
        }
    }

    /// A constant numeric expression (literals, unary minus, + - * / %).
    fn const_number(&mut self) -> Result<f64, ParseError> {
        let e = self.expr()?;
        const_eval(&e).ok_or_else(|| self.err("expected constant expression".into()))
    }

    fn const_u32(&mut self) -> Result<u32, ParseError> {
        let v = self.const_number()?;
        if v < 0.0 || v.fract() != 0.0 || v > u32::MAX as f64 {
            return Err(self.err("expected nonnegative integer constant".into()));
        }
        Ok(v as u32)
    }

    fn function(&mut self, ret: Type, name: String, span: Span) -> Result<Function, ParseError> {
        self.expect(&Tok::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != Tok::RParen {
            if *self.peek() == Tok::KwVoid && *self.peek2() == Tok::RParen {
                self.bump(); // `f(void)`
            } else {
                loop {
                    let ty = self.full_type()?;
                    let (pname, pspan) = self.ident()?;
                    params.push(Param { name: pname, ty, span: pspan });
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
            }
        }
        self.expect(&Tok::RParen)?;
        let body = self.block()?;
        Ok(Function { name, ret, params, body, span, is_outlined: false })
    }

    // ---------------- statements ----------------

    fn block(&mut self) -> Result<Block, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while *self.peek() != Tok::RBrace {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated block".into()));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(Block { stmts })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        match self.peek() {
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwInt | Tok::KwFloat => {
                let s = self.decl_stmt()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
            Tok::KwIf => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let then = self.block_or_stmt()?;
                let els = if self.eat(&Tok::KwElse) { Some(self.block_or_stmt()?) } else { None };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While { cond, body })
            }
            Tok::KwDo => {
                self.bump();
                let body = self.block_or_stmt()?;
                self.expect(&Tok::KwWhile)?;
                self.expect(&Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(&Tok::RParen)?;
                self.expect(&Tok::Semi)?;
                Ok(Stmt::DoWhile { body, cond })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let init = if *self.peek() == Tok::Semi {
                    None
                } else if matches!(self.peek(), Tok::KwInt | Tok::KwFloat) {
                    Some(Box::new(self.decl_stmt()?))
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&Tok::Semi)?;
                let cond = if *self.peek() == Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(&Tok::Semi)?;
                let step = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(&Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For { init, cond, step, body })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Break(span))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Continue(span))
            }
            Tok::KwReturn => {
                self.bump();
                let e = if *self.peek() == Tok::Semi { None } else { Some(self.expr()?) };
                self.expect(&Tok::Semi)?;
                Ok(Stmt::Return(e, span))
            }
            Tok::KwSpawn => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let lo = self.expr()?;
                self.expect(&Tok::Comma)?;
                let hi = self.expr()?;
                self.expect(&Tok::RParen)?;
                let body = self.block()?;
                Ok(Stmt::Spawn { lo, hi, body, span })
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(&Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// A single statement or a braced block, normalized to a block.
    fn block_or_stmt(&mut self) -> Result<Block, ParseError> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(Block { stmts: vec![self.stmt()?] })
        }
    }

    /// Local declaration (without the trailing semicolon).
    fn decl_stmt(&mut self) -> Result<Stmt, ParseError> {
        let ty = self.full_type()?;
        let (name, span) = self.ident()?;
        let mut array = None;
        if self.eat(&Tok::LBracket) {
            array = Some(self.const_u32()?);
            self.expect(&Tok::RBracket)?;
        }
        let init = if self.eat(&Tok::Assign) { Some(self.expr()?) } else { None };
        Ok(Stmt::Decl { name, ty, array, init, span })
    }

    /// Assignment / expression statement (no semicolon) — also used as a
    /// `for` init/step clause.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let span = self.span();
        let e = self.expr()?;
        let op = match self.peek() {
            Tok::Assign => None,
            Tok::PlusAssign => Some(BinOp::Add),
            Tok::MinusAssign => Some(BinOp::Sub),
            Tok::StarAssign => Some(BinOp::Mul),
            Tok::SlashAssign => Some(BinOp::Div),
            Tok::PercentAssign => Some(BinOp::Rem),
            Tok::AmpAssign => Some(BinOp::BitAnd),
            Tok::PipeAssign => Some(BinOp::BitOr),
            Tok::CaretAssign => Some(BinOp::BitXor),
            Tok::ShlAssign => Some(BinOp::Shl),
            Tok::ShrAssign => Some(BinOp::Shr),
            Tok::PlusPlus => {
                self.bump();
                return Ok(Stmt::Assign {
                    target: e,
                    op: Some(BinOp::Add),
                    value: Expr::IntLit(1),
                    span,
                });
            }
            Tok::MinusMinus => {
                self.bump();
                return Ok(Stmt::Assign {
                    target: e,
                    op: Some(BinOp::Sub),
                    value: Expr::IntLit(1),
                    span,
                });
            }
            _ => return Ok(Stmt::Expr(e)),
        };
        self.bump();
        let value = self.expr()?;
        Ok(Stmt::Assign { target: e, op, value, span })
    }

    // ---------------- expressions (precedence climbing) ----------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.ternary()
    }

    fn ternary(&mut self) -> Result<Expr, ParseError> {
        let c = self.binary(0)?;
        if self.eat(&Tok::Question) {
            let t = self.expr()?;
            self.expect(&Tok::Colon)?;
            let e = self.expr()?;
            Ok(Expr::Ternary { c: Box::new(c), t: Box::new(t), e: Box::new(e) })
        } else {
            Ok(c)
        }
    }

    fn bin_op(&self) -> Option<(BinOp, u8)> {
        Some(match self.peek() {
            Tok::OrOr => (BinOp::LogOr, 1),
            Tok::AndAnd => (BinOp::LogAnd, 2),
            Tok::Pipe => (BinOp::BitOr, 3),
            Tok::Caret => (BinOp::BitXor, 4),
            Tok::Amp => (BinOp::BitAnd, 5),
            Tok::Eq => (BinOp::Eq, 6),
            Tok::Ne => (BinOp::Ne, 6),
            Tok::Lt => (BinOp::Lt, 7),
            Tok::Le => (BinOp::Le, 7),
            Tok::Gt => (BinOp::Gt, 7),
            Tok::Ge => (BinOp::Ge, 7),
            Tok::Shl => (BinOp::Shl, 8),
            Tok::Shr => (BinOp::Shr, 8),
            Tok::Plus => (BinOp::Add, 9),
            Tok::Minus => (BinOp::Sub, 9),
            Tok::Star => (BinOp::Mul, 10),
            Tok::Slash => (BinOp::Div, 10),
            Tok::Percent => (BinOp::Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.bin_op() {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary { op, l: Box::new(lhs), r: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Neg, e: Box::new(self.unary()?) })
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::Not, e: Box::new(self.unary()?) })
            }
            Tok::Tilde => {
                self.bump();
                Ok(Expr::Unary { op: UnOp::BitNot, e: Box::new(self.unary()?) })
            }
            Tok::Star => {
                self.bump();
                Ok(Expr::Deref(Box::new(self.unary()?)))
            }
            Tok::Amp => {
                self.bump();
                Ok(Expr::AddrOf(Box::new(self.unary()?), span))
            }
            Tok::LParen if matches!(self.peek2(), Tok::KwInt | Tok::KwFloat | Tok::KwVoid) => {
                // Cast: `(type*) expr`.
                self.bump();
                let ty = self.full_type()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Cast { ty, e: Box::new(self.unary()?) })
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            if self.eat(&Tok::LBracket) {
                let idx = self.expr()?;
                self.expect(&Tok::RBracket)?;
                e = Expr::Index { base: Box::new(e), idx: Box::new(idx) };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        let span = self.span();
        match self.bump().tok {
            Tok::Int(v) => Ok(Expr::IntLit(v)),
            Tok::Float(v) => Ok(Expr::FloatLit(v)),
            Tok::Dollar => Ok(Expr::Dollar(span)),
            Tok::KwPs => {
                self.expect(&Tok::LParen)?;
                let local = self.expr()?;
                self.expect(&Tok::Comma)?;
                let base = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Ps { local: Box::new(local), base: Box::new(base), span })
            }
            Tok::KwPsm => {
                self.expect(&Tok::LParen)?;
                let local = self.expr()?;
                self.expect(&Tok::Comma)?;
                let target = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Psm { local: Box::new(local), target: Box::new(target), span })
            }
            Tok::Ident(name) => {
                if *self.peek() == Tok::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != Tok::RParen {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Expr::Call { name, args, span })
                } else {
                    Ok(Expr::Ident(name, span))
                }
            }
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            other => Err(ParseError {
                span,
                message: format!("expected expression, found `{other}`"),
            }),
        }
    }
}

/// Type of the most recent global's base declaration (for `int a, b;`).
fn prog_last_base(prog: &Program) -> Type {
    prog.globals.last().map(|g| g.ty.clone()).unwrap_or(Type::Int)
}

/// Evaluate a constant numeric expression (global initializers and array
/// bounds).
pub fn const_eval(e: &Expr) -> Option<f64> {
    match e {
        Expr::IntLit(v) => Some(*v as f64),
        Expr::FloatLit(v) => Some(*v),
        Expr::Unary { op: UnOp::Neg, e } => Some(-const_eval(e)?),
        Expr::Binary { op, l, r } => {
            let (a, b) = (const_eval(l)?, const_eval(r)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return None;
                    }
                    a / b
                }
                _ => return None,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 2a array-compaction program, verbatim modulo
    /// whitespace.
    pub const FIG2A: &str = r#"
        int A[8]; int B[8]; int base = 0; int N = 8;
        void main() {
            spawn(0, N - 1) {
                int inc = 1;
                if (A[$] != 0) {
                    ps(inc, base);
                    B[inc] = A[$];
                }
            }
        }
    "#;

    #[test]
    fn parses_fig2a() {
        let p = parse(FIG2A).unwrap();
        assert_eq!(p.globals.len(), 4);
        assert_eq!(p.functions.len(), 1);
        let main = p.function("main").unwrap();
        let Stmt::Spawn { body, .. } = &main.body.stmts[0] else {
            panic!("expected spawn")
        };
        let Stmt::If { cond, then, .. } = &body.stmts[1] else {
            panic!("expected if")
        };
        assert!(matches!(cond, Expr::Binary { op: BinOp::Ne, .. }));
        assert!(matches!(then.stmts[0], Stmt::Expr(Expr::Ps { .. })));
    }

    #[test]
    fn precedence_and_associativity() {
        let p = parse("int x; void main() { x = 1 + 2 * 3 - 4; }").unwrap();
        let Stmt::Assign { value, .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        // ((1 + (2*3)) - 4)
        assert_eq!(const_eval(value), Some(3.0));
    }

    #[test]
    fn control_flow_statements() {
        let src = r#"
            void main() {
                int i;
                for (i = 0; i < 10; i++) {
                    if (i == 5) continue;
                    while (i > 20) { break; }
                    do { i += 1; } while (i < 3);
                }
            }
        "#;
        let p = parse(src).unwrap();
        assert!(matches!(p.functions[0].body.stmts[1], Stmt::For { .. }));
    }

    #[test]
    fn pointers_casts_addrof() {
        let src = r#"
            void f(int* p, float* q) {
                *p = 1;
                q[2] = (float)(*p);
                p = &p[3];
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.functions[0].params[0].ty, Type::Int.ptr());
        assert!(matches!(
            p.functions[0].body.stmts[1],
            Stmt::Assign { value: Expr::Cast { .. }, .. }
        ));
    }

    #[test]
    fn global_arrays_and_initializers() {
        let p = parse("const int T[4] = {1, 2, 3, 4}; volatile int flag; float g = 9.81;")
            .unwrap();
        assert_eq!(p.globals[0].array, Some(4));
        assert!(p.globals[0].is_const);
        assert_eq!(
            p.globals[0].init,
            Some(GlobalInit::List(vec![1.0, 2.0, 3.0, 4.0]))
        );
        assert!(p.globals[1].volatile);
        assert_eq!(p.globals[2].init, Some(GlobalInit::Scalar(9.81)));
    }

    #[test]
    fn array_size_constant_expressions() {
        let p = parse("int A[2 * 8]; void main() { }").unwrap();
        assert_eq!(p.globals[0].array, Some(16));
    }

    #[test]
    fn psm_parses() {
        let p = parse("int c; void main() { int v = 1; psm(v, c); }").unwrap();
        assert!(matches!(
            p.functions[0].body.stmts[1],
            Stmt::Expr(Expr::Psm { .. })
        ));
    }

    #[test]
    fn errors_have_positions() {
        let err = parse("void main() { int = 3; }").unwrap_err();
        assert_eq!(err.span.line, 1);
        assert!(err.message.contains("identifier"));
        assert!(parse("void main() { x = ; }").is_err());
        assert!(parse("int A[-1];").is_err());
    }

    #[test]
    fn ternary_and_logical() {
        let p = parse("int x; void main() { x = x > 0 && x < 10 ? 1 : 0; }").unwrap();
        let Stmt::Assign { value, .. } = &p.functions[0].body.stmts[0] else {
            panic!()
        };
        assert!(matches!(value, Expr::Ternary { .. }));
    }
}
