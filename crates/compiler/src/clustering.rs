//! Virtual-thread clustering (coarsening) — paper §IV-C.
//!
//! XMT encourages expressing all available parallelism, however
//! fine-grained; but extremely fine-grained programs still benefit from
//! *coarsening*: grouping `c` short virtual threads into one longer
//! thread reduces the per-thread scheduling overhead (`ps`/`chkid`) and
//! enables spatial-locality optimizations. This optional pre-pass
//! rewrites
//!
//! ```text
//! spawn(lo, hi) { BODY($) }
//! ```
//!
//! into
//!
//! ```text
//! spawn(0, ceil(n/c)-1) {
//!     t = lo + $*c;
//!     for i in 0..c { id = t + i; if (id <= hi) BODY(id) }
//! }
//! ```

use crate::ast::*;
use crate::sema::subst_dollar;

/// Apply clustering with factor `c` to every spawn in the program.
pub fn cluster(program: &mut Program, c: u32) {
    assert!(c > 1, "clustering factor must be > 1");
    let mut counter = 0u32;
    for f in &mut program.functions {
        cluster_block(&mut f.body, c, &mut counter);
    }
}

fn cluster_block(b: &mut Block, c: u32, counter: &mut u32) {
    for s in &mut b.stmts {
        cluster_stmt(s, c, counter);
    }
}

fn cluster_stmt(s: &mut Stmt, c: u32, counter: &mut u32) {
    match s {
        Stmt::Spawn { lo, hi, body, span } => {
            let k = *counter;
            *counter += 1;
            let span = *span;
            let lo_v = format!("__clu_lo{k}");
            let hi_v = format!("__clu_hi{k}");
            let t_v = format!("__clu_t{k}");
            let i_v = format!("__clu_i{k}");
            let id_v = format!("__clu_id{k}");
            let ident = |n: &str| Expr::Ident(n.to_string(), span);

            let mut inner = body.clone();
            subst_dollar(&mut inner, &id_v);

            // ceil(n/c) - 1  with n = hi - lo + 1, as an int expression
            // evaluated in serial code: (hi - lo + c) / c - 1.
            let new_hi = Expr::Binary {
                op: BinOp::Sub,
                l: Box::new(Expr::Binary {
                    op: BinOp::Div,
                    l: Box::new(Expr::Binary {
                        op: BinOp::Add,
                        l: Box::new(Expr::Binary {
                            op: BinOp::Sub,
                            l: Box::new(ident(&hi_v)),
                            r: Box::new(ident(&lo_v)),
                        }),
                        r: Box::new(Expr::IntLit(c as i64)),
                    }),
                    r: Box::new(Expr::IntLit(c as i64)),
                }),
                r: Box::new(Expr::IntLit(1)),
            };

            let new_body = Block {
                stmts: vec![
                    // t = lo + $ * c
                    Stmt::Decl {
                        name: t_v.clone(),
                        ty: Type::Int,
                        array: None,
                        init: Some(Expr::Binary {
                            op: BinOp::Add,
                            l: Box::new(ident(&lo_v)),
                            r: Box::new(Expr::Binary {
                                op: BinOp::Mul,
                                l: Box::new(Expr::Dollar(span)),
                                r: Box::new(Expr::IntLit(c as i64)),
                            }),
                        }),
                        span,
                    },
                    // for (i = 0; i < c; i++) { id = t+i; if (id<=hi) BODY }
                    Stmt::For {
                        init: Some(Box::new(Stmt::Decl {
                            name: i_v.clone(),
                            ty: Type::Int,
                            array: None,
                            init: Some(Expr::IntLit(0)),
                            span,
                        })),
                        cond: Some(Expr::Binary {
                            op: BinOp::Lt,
                            l: Box::new(ident(&i_v)),
                            r: Box::new(Expr::IntLit(c as i64)),
                        }),
                        step: Some(Box::new(Stmt::Assign {
                            target: ident(&i_v),
                            op: Some(BinOp::Add),
                            value: Expr::IntLit(1),
                            span,
                        })),
                        body: Block {
                            stmts: vec![
                                Stmt::Decl {
                                    name: id_v.clone(),
                                    ty: Type::Int,
                                    array: None,
                                    init: Some(Expr::Binary {
                                        op: BinOp::Add,
                                        l: Box::new(ident(&t_v)),
                                        r: Box::new(ident(&i_v)),
                                    }),
                                    span,
                                },
                                Stmt::If {
                                    cond: Expr::Binary {
                                        op: BinOp::Le,
                                        l: Box::new(ident(&id_v)),
                                        r: Box::new(ident(&hi_v)),
                                    },
                                    then: inner,
                                    els: None,
                                },
                            ],
                        },
                    },
                ],
            };

            *s = Stmt::Block(Block {
                stmts: vec![
                    Stmt::Decl {
                        name: lo_v,
                        ty: Type::Int,
                        array: None,
                        init: Some(lo.clone()),
                        span,
                    },
                    Stmt::Decl {
                        name: hi_v,
                        ty: Type::Int,
                        array: None,
                        init: Some(hi.clone()),
                        span,
                    },
                    Stmt::Spawn { lo: Expr::IntLit(0), hi: new_hi, body: new_body, span },
                ],
            });
        }
        Stmt::If { then, els, .. } => {
            cluster_block(then, c, counter);
            if let Some(e) = els {
                cluster_block(e, c, counter);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => cluster_block(body, c, counter),
        Stmt::For { body, .. } => cluster_block(body, c, counter),
        Stmt::Block(b) => cluster_block(b, c, counter),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn clustering_rewrites_spawn_shape() {
        let mut p = parse(
            "int A[100];
             void main() { spawn(3, 99) { A[$] = $; } }",
        )
        .unwrap();
        cluster(&mut p, 4);
        let main = p.function("main").unwrap();
        let Stmt::Block(outer) = &main.body.stmts[0] else { panic!("wrapped block") };
        assert!(matches!(outer.stmts[0], Stmt::Decl { .. })); // __clu_lo
        assert!(matches!(outer.stmts[1], Stmt::Decl { .. })); // __clu_hi
        let Stmt::Spawn { lo, body, .. } = &outer.stmts[2] else { panic!("spawn") };
        assert_eq!(*lo, Expr::IntLit(0));
        // Body: t decl + for loop.
        assert!(matches!(body.stmts[1], Stmt::For { .. }));
        // `$` in the original body was substituted.
        let Stmt::For { body: fb, .. } = &body.stmts[1] else { panic!() };
        let Stmt::If { then, .. } = &fb.stmts[1] else { panic!() };
        let Stmt::Assign { value, .. } = &then.stmts[0] else { panic!() };
        assert!(matches!(value, Expr::Ident(n, _) if n.starts_with("__clu_id")));
    }

    #[test]
    fn multiple_spawns_get_unique_names() {
        let mut p = parse(
            "int A[8];
             void main() { spawn(0,7){ A[$]=1; } spawn(0,7){ A[$]=2; } }",
        )
        .unwrap();
        cluster(&mut p, 2);
        let src = format!("{:?}", p);
        assert!(src.contains("__clu_id0"));
        assert!(src.contains("__clu_id1"));
    }
}
