//! Outlining (method extraction) of spawn blocks — the paper's CIL
//! pre-pass transformation (§IV-B, Fig. 8).
//!
//! The core-pass is a serial optimizer; left inline, a spawn statement
//! looks to it like a plain code block, opening the door to *illegal
//! dataflow*: code motion across the spawn boundary, and register
//! promotion of variables that the parallel TCUs can only observe through
//! memory. Outlining places each spawn statement in a new function and
//! replaces it with a call. Variables of the enclosing scope that the
//! spawn accesses become parameters: read-only scalars by value, written
//! scalars by reference (as `found` in Fig. 8c), arrays by (decayed)
//! pointer.
//!
//! With outlining disabled (the `Options::outline` flag) the compiler
//! reproduces the paper's hazard: a scalar written inside the spawn block
//! lives in a master register that the TCUs never write back — the
//! `fig8_illegal_dataflow` integration test demonstrates the divergence.

use crate::ast::*;
use std::collections::{BTreeMap, HashSet};

/// Outline every spawn statement of every function in the program.
pub fn outline(program: &mut Program) {
    let mut new_fns = Vec::new();
    let mut counter = 0u32;
    for f in &mut program.functions {
        let mut scope = Scope::default();
        for p in &f.params {
            scope.declare(&p.name, p.ty.clone(), false);
        }
        outline_block(&mut f.body, &mut scope, &mut new_fns, &mut counter);
    }
    program.functions.extend(new_fns);
}

/// Lexical scope tracking for capture analysis.
#[derive(Default, Clone)]
struct Scope {
    /// Stack of frames; each maps name → (type, is_array).
    frames: Vec<BTreeMap<String, (Type, bool)>>,
}

impl Scope {
    fn push(&mut self) {
        self.frames.push(BTreeMap::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, name: &str, ty: Type, is_array: bool) {
        if self.frames.is_empty() {
            self.frames.push(BTreeMap::new());
        }
        self.frames
            .last_mut()
            .unwrap()
            .insert(name.to_string(), (ty, is_array));
    }

    fn lookup(&self, name: &str) -> Option<&(Type, bool)> {
        self.frames.iter().rev().find_map(|f| f.get(name))
    }
}

fn outline_block(
    b: &mut Block,
    scope: &mut Scope,
    new_fns: &mut Vec<Function>,
    counter: &mut u32,
) {
    scope.push();
    for s in &mut b.stmts {
        outline_stmt(s, scope, new_fns, counter);
    }
    scope.pop();
}

fn outline_stmt(
    s: &mut Stmt,
    scope: &mut Scope,
    new_fns: &mut Vec<Function>,
    counter: &mut u32,
) {
    match s {
        Stmt::Decl { name, ty, array, .. } => {
            scope.declare(name, ty.clone(), array.is_some());
        }
        Stmt::If { then, els, .. } => {
            outline_block(then, scope, new_fns, counter);
            if let Some(e) = els {
                outline_block(e, scope, new_fns, counter);
            }
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
            outline_block(body, scope, new_fns, counter)
        }
        Stmt::For { init, body, .. } => {
            scope.push();
            if let Some(i) = init {
                outline_stmt(i, scope, new_fns, counter);
            }
            outline_block(body, scope, new_fns, counter);
            scope.pop();
        }
        Stmt::Block(b) => outline_block(b, scope, new_fns, counter),
        Stmt::Spawn { lo, hi, body, span } => {
            let k = *counter;
            *counter += 1;
            let fname = format!("__outl_spawn{k}");

            // 1. Capture analysis over lo/hi/body.
            let mut caps = Captures {
                scope,
                reads: Vec::new(),
                writes: HashSet::new(),
                locals: vec![HashSet::new()],
            };
            caps.expr(lo, false);
            caps.expr(hi, false);
            caps.block(body);
            let reads = caps.reads.clone();
            let writes = caps.writes.clone();

            // 2. Build the parameter list: stable order of first use.
            let mut params = Vec::new();
            let mut by_ref = HashSet::new();
            for (name, ty, is_array) in &reads {
                let (pty, r) = if *is_array {
                    // Arrays decay: pass the element pointer by value.
                    (array_decay(ty), false)
                } else if writes.contains(name) {
                    (ty.clone().ptr(), true)
                } else {
                    (ty.clone(), false)
                };
                if r {
                    by_ref.insert(name.clone());
                }
                params.push(Param { name: name.clone(), ty: pty, span: *span });
            }

            // 3. Rewrite by-ref uses inside the spawn (v → *v).
            let mut new_lo = lo.clone();
            let mut new_hi = hi.clone();
            let mut new_body = body.clone();
            if !by_ref.is_empty() {
                let mut rw = Rewriter { by_ref: &by_ref, shadow: vec![HashSet::new()] };
                rw.expr(&mut new_lo);
                rw.expr(&mut new_hi);
                rw.block(&mut new_body);
            }

            // 4. Emit the outlined function and the replacing call.
            let args: Vec<Expr> = reads
                .iter()
                .map(|(name, _, is_array)| {
                    if by_ref.contains(name) && !is_array {
                        Expr::AddrOf(Box::new(Expr::Ident(name.clone(), *span)), *span)
                    } else {
                        Expr::Ident(name.clone(), *span)
                    }
                })
                .collect();
            new_fns.push(Function {
                name: fname.clone(),
                ret: Type::Void,
                params,
                body: Block {
                    stmts: vec![Stmt::Spawn {
                        lo: new_lo,
                        hi: new_hi,
                        body: new_body,
                        span: *span,
                    }],
                },
                span: *span,
                is_outlined: true,
            });
            *s = Stmt::Expr(Expr::Call { name: fname, args, span: *span });
        }
        _ => {}
    }
}

fn array_decay(elem: &Type) -> Type {
    elem.clone().ptr()
}

/// Collects enclosing-scope variables referenced by a spawn statement.
struct Captures<'a> {
    scope: &'a Scope,
    /// (name, type, is_array) in order of first use.
    reads: Vec<(String, Type, bool)>,
    writes: HashSet<String>,
    /// Names declared inside the spawn body (shadow the captures).
    locals: Vec<HashSet<String>>,
}

impl Captures<'_> {
    fn is_local(&self, name: &str) -> bool {
        self.locals.iter().any(|f| f.contains(name))
    }

    fn note(&mut self, name: &str, written: bool) {
        if self.is_local(name) {
            return;
        }
        let Some((ty, is_array)) = self.scope.lookup(name) else {
            return; // a global — stays in shared memory, no capture
        };
        if !self.reads.iter().any(|(n, _, _)| n == name) {
            self.reads.push((name.to_string(), ty.clone(), *is_array));
        }
        if written {
            self.writes.insert(name.to_string());
        }
    }

    fn block(&mut self, b: &Block) {
        self.locals.push(HashSet::new());
        for s in &b.stmts {
            self.stmt(s);
        }
        self.locals.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { name, init, .. } => {
                if let Some(e) = init {
                    self.expr(e, false);
                }
                self.locals.last_mut().unwrap().insert(name.clone());
            }
            Stmt::Assign { target, value, op, .. } => {
                // Compound assignment also reads the target.
                self.expr(value, false);
                self.lvalue(target, op.is_some());
            }
            Stmt::If { cond, then, els } => {
                self.expr(cond, false);
                self.block(then);
                if let Some(e) = els {
                    self.block(e);
                }
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                self.expr(cond, false);
                self.block(body);
            }
            Stmt::For { init, cond, step, body } => {
                self.locals.push(HashSet::new());
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c, false);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
                self.locals.pop();
            }
            Stmt::Return(Some(e), _) => self.expr(e, false),
            Stmt::Expr(e) => self.expr(e, false),
            Stmt::Block(b) => self.block(b),
            Stmt::Spawn { .. } => unreachable!("nested spawns serialized before outlining"),
            _ => {}
        }
    }

    /// Record an lvalue occurrence; `also_reads` for compound assignment.
    fn lvalue(&mut self, e: &Expr, also_reads: bool) {
        match e {
            Expr::Ident(name, _) => {
                self.note(name, true);
                let _ = also_reads; // note() already records the read
            }
            Expr::Index { base, idx } => {
                // Writing through an array/pointer reads the base.
                self.expr(base, false);
                self.expr(idx, false);
            }
            Expr::Deref(inner) => self.expr(inner, false),
            other => self.expr(other, false),
        }
    }

    fn expr(&mut self, e: &Expr, _write: bool) {
        match e {
            Expr::Ident(name, _) => self.note(name, false),
            Expr::AddrOf(inner, _) => {
                // Taking an address forces by-ref capture.
                if let Expr::Ident(name, _) = inner.as_ref() {
                    self.note(name, true);
                } else {
                    self.expr(inner, false);
                }
            }
            Expr::Unary { e, .. } | Expr::Deref(e) | Expr::Cast { e, .. } => self.expr(e, false),
            Expr::Binary { l, r, .. } => {
                self.expr(l, false);
                self.expr(r, false);
            }
            Expr::Ternary { c, t, e } => {
                self.expr(c, false);
                self.expr(t, false);
                self.expr(e, false);
            }
            Expr::Index { base, idx } => {
                self.expr(base, false);
                self.expr(idx, false);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a, false);
                }
            }
            Expr::Ps { local, base, .. } => {
                // ps writes its `local` argument.
                self.lvalue(local, true);
                self.expr(base, false);
            }
            Expr::Psm { local, target, .. } => {
                self.lvalue(local, true);
                self.lvalue(target, true);
            }
            _ => {}
        }
    }
}

/// Rewrites by-ref captured identifiers `v` into `*v`, respecting
/// shadowing by spawn-local declarations.
struct Rewriter<'a> {
    by_ref: &'a HashSet<String>,
    shadow: Vec<HashSet<String>>,
}

impl Rewriter<'_> {
    fn shadowed(&self, name: &str) -> bool {
        self.shadow.iter().any(|f| f.contains(name))
    }

    fn block(&mut self, b: &mut Block) {
        self.shadow.push(HashSet::new());
        for s in &mut b.stmts {
            self.stmt(s);
        }
        self.shadow.pop();
    }

    fn stmt(&mut self, s: &mut Stmt) {
        match s {
            Stmt::Decl { name, init, .. } => {
                if let Some(e) = init {
                    self.expr(e);
                }
                self.shadow.last_mut().unwrap().insert(name.clone());
            }
            Stmt::Assign { target, value, .. } => {
                self.expr(target);
                self.expr(value);
            }
            Stmt::If { cond, then, els } => {
                self.expr(cond);
                self.block(then);
                if let Some(e) = els {
                    self.block(e);
                }
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                self.expr(cond);
                self.block(body);
            }
            Stmt::For { init, cond, step, body } => {
                self.shadow.push(HashSet::new());
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
                self.shadow.pop();
            }
            Stmt::Return(Some(e), _) => self.expr(e),
            Stmt::Expr(e) => self.expr(e),
            Stmt::Block(b) => self.block(b),
            _ => {}
        }
    }

    fn expr(&mut self, e: &mut Expr) {
        match e {
            Expr::Ident(name, span)
                if self.by_ref.contains(name.as_str()) && !self.shadowed(name) => {
                    *e = Expr::Deref(Box::new(Expr::Ident(name.clone(), *span)));
                }
            Expr::AddrOf(inner, _) => {
                self.expr(inner);
                // `&*p` simplifies to `p`.
                if let Expr::AddrOf(x, _) = e {
                    if let Expr::Deref(p) = x.as_mut() {
                        *e = (**p).clone();
                    }
                }
            }
            Expr::Unary { e, .. } | Expr::Deref(e) | Expr::Cast { e, .. } => self.expr(e),
            Expr::Binary { l, r, .. } => {
                self.expr(l);
                self.expr(r);
            }
            Expr::Ternary { c, t, e } => {
                self.expr(c);
                self.expr(t);
                self.expr(e);
            }
            Expr::Index { base, idx } => {
                self.expr(base);
                self.expr(idx);
            }
            Expr::Call { args, .. } => {
                for a in args {
                    self.expr(a);
                }
            }
            Expr::Ps { local, base, .. } => {
                self.expr(local);
                self.expr(base);
            }
            Expr::Psm { local, target, .. } => {
                self.expr(local);
                self.expr(target);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::sema::check;

    fn outlined(src: &str) -> Program {
        let mut p = check(parse(src).unwrap()).unwrap().program;
        outline(&mut p);
        p
    }

    #[test]
    fn fig8_outlining_shape() {
        // Paper Fig. 8a → Fig. 8c: `found` is written in the spawn block
        // so it is passed by reference; the array is a global and is not
        // captured.
        let p = outlined(
            "int A[16]; int counter;
             void main() {
                 int found = 0;
                 spawn(0, 15) { if (A[$] != 0) { found = 1; } }
                 if (found) { counter += 1; }
             }",
        );
        let f = p.function("__outl_spawn0").expect("outlined function exists");
        assert!(f.is_outlined);
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].name, "found");
        assert_eq!(f.params[0].ty, Type::Int.ptr());
        // The body writes through the pointer.
        let Stmt::Spawn { body, .. } = &f.body.stmts[0] else { panic!() };
        let Stmt::If { then, .. } = &body.stmts[0] else { panic!() };
        let Stmt::Assign { target, .. } = &then.stmts[0] else { panic!() };
        assert!(matches!(target, Expr::Deref(_)));

        // The call site passes &found.
        let main = p.function("main").unwrap();
        let Stmt::Expr(Expr::Call { name, args, .. }) = &main.body.stmts[1] else {
            panic!("spawn replaced by call")
        };
        assert_eq!(name, "__outl_spawn0");
        assert!(matches!(args[0], Expr::AddrOf(..)));
    }

    #[test]
    fn read_only_scalars_by_value() {
        let p = outlined(
            "int A[8];
             void main() { int n = 4; spawn(0, 7) { A[$] = n; } }",
        );
        let f = p.function("__outl_spawn0").unwrap();
        assert_eq!(f.params.len(), 1);
        assert_eq!(f.params[0].ty, Type::Int);
    }

    #[test]
    fn local_arrays_by_decayed_pointer() {
        let p = outlined(
            "void main() { int t[8]; spawn(0, 7) { t[$] = $; } }",
        );
        let f = p.function("__outl_spawn0").unwrap();
        assert_eq!(f.params[0].ty, Type::Int.ptr());
        // Writes go through indexing, not deref-rewrite.
        let Stmt::Spawn { body, .. } = &f.body.stmts[0] else { panic!() };
        assert!(matches!(&body.stmts[0], Stmt::Assign { target: Expr::Index { .. }, .. }));
    }

    #[test]
    fn spawn_bounds_capture_locals() {
        let p = outlined("void main() { int n = 9; int s = 0; spawn(0, n) { s += $; } }");
        let f = p.function("__outl_spawn0").unwrap();
        let names: Vec<&str> = f.params.iter().map(|p| p.name.as_str()).collect();
        assert!(names.contains(&"n"));
        assert!(names.contains(&"s"));
        // n read-only, s by-ref.
        let n = f.params.iter().find(|p| p.name == "n").unwrap();
        let s = f.params.iter().find(|p| p.name == "s").unwrap();
        assert_eq!(n.ty, Type::Int);
        assert_eq!(s.ty, Type::Int.ptr());
    }

    #[test]
    fn spawn_locals_shadow_captures() {
        // The spawn-local `x` shadows the outer `x`: no capture of the
        // outer one is needed for the inner uses.
        let p = outlined(
            "int A[4];
             void main() { int x = 1; spawn(0, 3) { int x = 2; A[$] = x; } x += 1; }",
        );
        let f = p.function("__outl_spawn0").unwrap();
        assert!(f.params.is_empty(), "shadowed variable must not be captured: {:?}", f.params);
    }

    #[test]
    fn ps_local_capture_is_by_ref() {
        // Fig 2a shape but with the ps local coming from the enclosing
        // scope — it must be captured by reference (ps writes it).
        let p = outlined(
            "int base; int B[8];
             void main() { int inc = 1; spawn(0, 7) { ps(inc, base); B[inc] = 1; } }",
        );
        let f = p.function("__outl_spawn0").unwrap();
        assert_eq!(f.params[0].name, "inc");
        assert_eq!(f.params[0].ty, Type::Int.ptr());
    }
}
