//! Lexer for XMTC — the modest SPMD parallel extension of C
//! (paper §II-A, Fig. 2a).
//!
//! On top of the C subset, XMTC adds the `spawn` keyword, the virtual
//! thread id symbol `$`, and the prefix-sum primitives `ps`/`psm`.

use std::fmt;

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // literals / identifiers
    Int(i64),
    Float(f64),
    Ident(String),
    // keywords
    KwInt,
    KwFloat,
    KwVoid,
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwDo,
    KwBreak,
    KwContinue,
    KwReturn,
    KwSpawn,
    KwPs,
    KwPsm,
    KwVolatile,
    KwConst,
    // the virtual thread id
    Dollar,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Question,
    Colon,
    // operators
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    AmpAssign,
    PipeAssign,
    CaretAssign,
    ShlAssign,
    ShrAssign,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Tilde,
    Shl,
    Shr,
    PlusPlus,
    MinusMinus,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "{s}"),
            other => f.write_str(match other {
                Tok::KwInt => "int",
                Tok::KwFloat => "float",
                Tok::KwVoid => "void",
                Tok::KwIf => "if",
                Tok::KwElse => "else",
                Tok::KwWhile => "while",
                Tok::KwFor => "for",
                Tok::KwDo => "do",
                Tok::KwBreak => "break",
                Tok::KwContinue => "continue",
                Tok::KwReturn => "return",
                Tok::KwSpawn => "spawn",
                Tok::KwPs => "ps",
                Tok::KwPsm => "psm",
                Tok::KwVolatile => "volatile",
                Tok::KwConst => "const",
                Tok::Dollar => "$",
                Tok::LParen => "(",
                Tok::RParen => ")",
                Tok::LBrace => "{",
                Tok::RBrace => "}",
                Tok::LBracket => "[",
                Tok::RBracket => "]",
                Tok::Semi => ";",
                Tok::Comma => ",",
                Tok::Question => "?",
                Tok::Colon => ":",
                Tok::Plus => "+",
                Tok::Minus => "-",
                Tok::Star => "*",
                Tok::Slash => "/",
                Tok::Percent => "%",
                Tok::Assign => "=",
                Tok::PlusAssign => "+=",
                Tok::MinusAssign => "-=",
                Tok::StarAssign => "*=",
                Tok::SlashAssign => "/=",
                Tok::PercentAssign => "%=",
                Tok::AmpAssign => "&=",
                Tok::PipeAssign => "|=",
                Tok::CaretAssign => "^=",
                Tok::ShlAssign => "<<=",
                Tok::ShrAssign => ">>=",
                Tok::Eq => "==",
                Tok::Ne => "!=",
                Tok::Lt => "<",
                Tok::Le => "<=",
                Tok::Gt => ">",
                Tok::Ge => ">=",
                Tok::AndAnd => "&&",
                Tok::OrOr => "||",
                Tok::Not => "!",
                Tok::Amp => "&",
                Tok::Pipe => "|",
                Tok::Caret => "^",
                Tok::Tilde => "~",
                Tok::Shl => "<<",
                Tok::Shr => ">>",
                Tok::PlusPlus => "++",
                Tok::MinusMinus => "--",
                Tok::Eof => "<eof>",
                _ => unreachable!(),
            }),
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub span: Span,
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for LexError {}

fn keyword(s: &str) -> Option<Tok> {
    Some(match s {
        "int" => Tok::KwInt,
        "float" => Tok::KwFloat,
        "void" => Tok::KwVoid,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "while" => Tok::KwWhile,
        "for" => Tok::KwFor,
        "do" => Tok::KwDo,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        "return" => Tok::KwReturn,
        "spawn" => Tok::KwSpawn,
        "ps" => Tok::KwPs,
        "psm" => Tok::KwPsm,
        "volatile" => Tok::KwVolatile,
        "const" => Tok::KwConst,
        _ => return None,
    })
}

/// Tokenize XMTC source text.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let span = Span { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(LexError { span, message: "unterminated comment".into() });
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let hex = c == b'0' && matches!(bytes.get(i + 1), Some(b'x') | Some(b'X'));
                if hex {
                    bump!();
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        bump!();
                    }
                    let text = &src[start + 2..i];
                    let v = i64::from_str_radix(text, 16).map_err(|_| LexError {
                        span,
                        message: format!("bad hex literal `{}`", &src[start..i]),
                    })?;
                    toks.push(Token { tok: Tok::Int(v), span });
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                    let is_float = i < bytes.len()
                        && bytes[i] == b'.'
                        && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit());
                    if is_float {
                        bump!(); // '.'
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            bump!();
                        }
                        // optional exponent
                        if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                            bump!();
                            if i < bytes.len() && (bytes[i] == b'+' || bytes[i] == b'-') {
                                bump!();
                            }
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                bump!();
                            }
                        }
                        let v: f64 = src[start..i].parse().map_err(|_| LexError {
                            span,
                            message: format!("bad float literal `{}`", &src[start..i]),
                        })?;
                        toks.push(Token { tok: Tok::Float(v), span });
                    } else {
                        let v: i64 = src[start..i].parse().map_err(|_| LexError {
                            span,
                            message: format!("bad int literal `{}`", &src[start..i]),
                        })?;
                        toks.push(Token { tok: Tok::Int(v), span });
                    }
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    bump!();
                }
                let word = &src[start..i];
                let tok = keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()));
                toks.push(Token { tok, span });
            }
            _ => {
                // Punctuation / operators (longest match first).
                // Match operators on raw bytes: the source may contain
                // arbitrary (multi-byte) UTF-8 and string slicing would
                // panic off a char boundary.
                let three: &[u8] = &bytes[i..bytes.len().min(i + 3)];
                let two: &[u8] = &bytes[i..bytes.len().min(i + 2)];
                let (tok, len) = match three {
                    b"<<=" => (Tok::ShlAssign, 3),
                    b">>=" => (Tok::ShrAssign, 3),
                    _ => match two {
                    b"+=" => (Tok::PlusAssign, 2),
                    b"-=" => (Tok::MinusAssign, 2),
                    b"*=" => (Tok::StarAssign, 2),
                    b"/=" => (Tok::SlashAssign, 2),
                    b"%=" => (Tok::PercentAssign, 2),
                    b"==" => (Tok::Eq, 2),
                    b"!=" => (Tok::Ne, 2),
                    b"<=" => (Tok::Le, 2),
                    b">=" => (Tok::Ge, 2),
                    b"&&" => (Tok::AndAnd, 2),
                    b"||" => (Tok::OrOr, 2),
                    b"<<" => (Tok::Shl, 2),
                    b">>" => (Tok::Shr, 2),
                    b"++" => (Tok::PlusPlus, 2),
                    b"--" => (Tok::MinusMinus, 2),
                    b"&=" => (Tok::AmpAssign, 2),
                    b"|=" => (Tok::PipeAssign, 2),
                    b"^=" => (Tok::CaretAssign, 2),
                    _ => match c {
                        b'(' => (Tok::LParen, 1),
                        b')' => (Tok::RParen, 1),
                        b'{' => (Tok::LBrace, 1),
                        b'}' => (Tok::RBrace, 1),
                        b'[' => (Tok::LBracket, 1),
                        b']' => (Tok::RBracket, 1),
                        b';' => (Tok::Semi, 1),
                        b',' => (Tok::Comma, 1),
                        b'?' => (Tok::Question, 1),
                        b':' => (Tok::Colon, 1),
                        b'+' => (Tok::Plus, 1),
                        b'-' => (Tok::Minus, 1),
                        b'*' => (Tok::Star, 1),
                        b'/' => (Tok::Slash, 1),
                        b'%' => (Tok::Percent, 1),
                        b'=' => (Tok::Assign, 1),
                        b'<' => (Tok::Lt, 1),
                        b'>' => (Tok::Gt, 1),
                        b'!' => (Tok::Not, 1),
                        b'&' => (Tok::Amp, 1),
                        b'|' => (Tok::Pipe, 1),
                        b'^' => (Tok::Caret, 1),
                        b'~' => (Tok::Tilde, 1),
                        b'$' => (Tok::Dollar, 1),
                        other => {
                            let shown = if other.is_ascii_graphic() {
                                format!("`{}`", other as char)
                            } else {
                                format!("byte 0x{other:02x}")
                            };
                            return Err(LexError {
                                span,
                                message: format!("unexpected character {shown}"),
                            })
                        }
                    },
                    },
                };
                for _ in 0..len {
                    bump!();
                }
                toks.push(Token { tok, span });
            }
        }
    }
    toks.push(Token { tok: Tok::Eof, span: Span { line, col } });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_fig2a_fragment() {
        let toks = kinds("spawn(0,N-1) { int inc=1; if (A[$]!=0) { ps(inc,base); } }");
        assert_eq!(toks[0], Tok::KwSpawn);
        assert!(toks.contains(&Tok::Dollar));
        assert!(toks.contains(&Tok::KwPs));
        assert!(toks.contains(&Tok::Ident("base".into())));
        assert_eq!(*toks.last().unwrap(), Tok::Eof);
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(
            kinds("42 0x1f 3.5 1.0e3 2.5e-2"),
            vec![
                Tok::Int(42),
                Tok::Int(31),
                Tok::Float(3.5),
                Tok::Float(1000.0),
                Tok::Float(0.025),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn integer_division_not_float() {
        // `1/2` must stay three tokens, and `a.b` is not valid anyway.
        assert_eq!(
            kinds("1/2"),
            vec![Tok::Int(1), Tok::Slash, Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // line\n/* block\nmore */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn compound_operators() {
        assert_eq!(
            kinds("a += b << 2 >= c && !d"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::Int(2),
                Tok::Ge,
                Tok::Ident("c".into()),
                Tok::AndAnd,
                Tok::Not,
                Tok::Ident("d".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn errors() {
        assert!(lex("`").is_err());
        assert!(lex("/* never closed").is_err());
    }
}
