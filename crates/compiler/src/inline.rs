//! Inlining of function calls inside spawn blocks.
//!
//! The current XMT release has no parallel (cactus) stack, so virtual
//! threads cannot *call* functions — the paper lists cactus-stack
//! support as under development (§IV-E). This pre-pass recovers most of
//! the expressiveness without any stack: calls in parallel code are
//! **inlined** at compile time. Two shapes are supported:
//!
//! * *expression functions* — a body of exactly `return expr;`: the call
//!   becomes a fresh temporary bound to the substituted expression;
//! * *simple procedures* — `void` functions without `return`, `spawn`
//!   or local arrays: the call becomes the renamed body block.
//!
//! Arguments are bound to fresh locals first (each argument is evaluated
//! exactly once, C semantics), and inlined bodies may themselves contain
//! calls — resolved iteratively with a depth limit, so recursion in
//! parallel code is still rejected with a clear error.

use crate::ast::*;
use crate::lexer::Span;
use crate::CompileError;
use std::collections::HashMap;

/// Maximum nesting of inlined calls (catches recursion).
const MAX_DEPTH: u32 = 16;

/// Inline calls inside every spawn body of the program.
pub fn inline_parallel_calls(program: &mut Program) -> Result<(), CompileError> {
    // Snapshot callee definitions (functions may call one another).
    let callees: HashMap<String, Function> = program
        .functions
        .iter()
        .map(|f| (f.name.clone(), f.clone()))
        .collect();
    let mut counter = 0u32;
    for f in &mut program.functions {
        let mut scope: Vec<String> = f.params.iter().map(|p| p.name.clone()).collect();
        inline_in_block(&mut f.body, false, &callees, &mut counter, 0, &mut scope)?;
    }
    Ok(())
}

/// Identifiers an expression references that are not bound by `bound`.
fn free_idents(e: &Expr, bound: &std::collections::HashSet<String>, out: &mut Vec<String>) {
    crate::sema::walk_expr(e, &mut |x| {
        if let Expr::Ident(n, _) = x {
            if !bound.contains(n) && !out.contains(n) {
                out.push(n.clone());
            }
        }
    });
}

/// Free identifiers of a block (locals and `bound` excluded).
fn free_idents_block(
    b: &Block,
    bound: &mut std::collections::HashSet<String>,
    out: &mut Vec<String>,
) {
    for s in &b.stmts {
        match s {
            Stmt::Decl { name, init, .. } => {
                if let Some(e) = init {
                    free_idents(e, bound, out);
                }
                bound.insert(name.clone());
            }
            Stmt::Assign { target, value, .. } => {
                free_idents(target, bound, out);
                free_idents(value, bound, out);
            }
            Stmt::If { cond, then, els } => {
                free_idents(cond, bound, out);
                free_idents_block(then, &mut bound.clone(), out);
                if let Some(e) = els {
                    free_idents_block(e, &mut bound.clone(), out);
                }
            }
            Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
                free_idents(cond, bound, out);
                free_idents_block(body, &mut bound.clone(), out);
            }
            Stmt::For { init, cond, step, body } => {
                let mut inner = bound.clone();
                if let Some(i) = init {
                    if let Stmt::Decl { name, init: ie, .. } = i.as_ref() {
                        if let Some(e) = ie {
                            free_idents(e, &inner, out);
                        }
                        inner.insert(name.clone());
                    }
                }
                if let Some(c) = cond {
                    free_idents(c, &inner, out);
                }
                if let Some(st) = step {
                    if let Stmt::Assign { target, value, .. } = st.as_ref() {
                        free_idents(target, &inner, out);
                        free_idents(value, &inner, out);
                    }
                }
                free_idents_block(body, &mut inner, out);
            }
            Stmt::Return(Some(e), _) | Stmt::Expr(e) => free_idents(e, bound, out),
            Stmt::Block(b) => free_idents_block(b, &mut bound.clone(), out),
            _ => {}
        }
    }
}

/// Hygiene check: the inlined body's free identifiers must refer to
/// globals; if the call site shadows one with a local, substitution would
/// capture it silently — reject with a clear diagnostic instead.
fn check_hygiene(
    callee: &Function,
    scope: &[String],
    span: Span,
) -> Result<(), CompileError> {
    let mut bound: std::collections::HashSet<String> =
        callee.params.iter().map(|p| p.name.clone()).collect();
    let mut free = Vec::new();
    free_idents_block(&callee.body, &mut bound, &mut free);
    for name in free {
        if scope.contains(&name) {
            return Err(CompileError::sema(
                format!(
                    "cannot inline `{}` here: it reads global `{name}`, which a local of the same name shadows at this call site — rename the local",
                    callee.name
                ),
                span,
            ));
        }
    }
    Ok(())
}

/// Remove functions that are no longer reachable from `main` through
/// remaining (serial) calls — in particular helpers that existed only to
/// be inlined into spawn blocks. Keeps unreachable-but-valid code from
/// tripping ABI limits it never exercises (e.g. float parameters).
pub fn prune_dead_functions(program: &mut Program) {
    use std::collections::HashSet;
    let mut live: HashSet<String> = HashSet::new();
    let mut work = vec!["main".to_string()];
    while let Some(name) = work.pop() {
        if !live.insert(name.clone()) {
            continue;
        }
        if let Some(f) = program.function(&name) {
            crate::sema::walk_exprs(&f.body, &mut |e| {
                if let Expr::Call { name, .. } = e {
                    if !live.contains(name) {
                        work.push(name.clone());
                    }
                }
            });
        }
    }
    program.functions.retain(|f| live.contains(&f.name));
}

/// What kind of inlining a callee supports.
enum Shape<'a> {
    /// `return expr;`
    Expr(&'a Expr),
    /// `void` body without returns/spawns/arrays.
    Block(&'a Block),
}

fn shape_of(f: &Function) -> Option<Shape<'_>> {
    // Expression function: single `return expr;`.
    if let [Stmt::Return(Some(e), _)] = f.body.stmts.as_slice() {
        return Some(Shape::Expr(e));
    }
    // Simple procedure.
    if f.ret == Type::Void {
        let mut ok = true;
        walk_stmts(&f.body, &mut |s| match s {
            Stmt::Return(..) | Stmt::Spawn { .. } => ok = false,
            Stmt::Decl { array: Some(_), .. } => ok = false,
            _ => {}
        });
        if ok {
            return Some(Shape::Block(&f.body));
        }
    }
    None
}

fn inline_in_block(
    b: &mut Block,
    in_spawn: bool,
    callees: &HashMap<String, Function>,
    counter: &mut u32,
    depth: u32,
    scope: &mut Vec<String>,
) -> Result<(), CompileError> {
    let mark = scope.len();
    let mut out: Vec<Stmt> = Vec::with_capacity(b.stmts.len());
    for mut s in std::mem::take(&mut b.stmts) {
        // Recurse into nested structures first.
        match &mut s {
            Stmt::If { then, els, .. } => {
                inline_in_block(then, in_spawn, callees, counter, depth, scope)?;
                if let Some(e) = els {
                    inline_in_block(e, in_spawn, callees, counter, depth, scope)?;
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                inline_in_block(body, in_spawn, callees, counter, depth, scope)?
            }
            Stmt::For { init, body, .. } => {
                let m = scope.len();
                if let Some(Stmt::Decl { name, .. }) = init.as_deref() {
                    scope.push(name.clone());
                }
                inline_in_block(body, in_spawn, callees, counter, depth, scope)?;
                scope.truncate(m);
            }
            Stmt::Block(inner) => {
                inline_in_block(inner, in_spawn, callees, counter, depth, scope)?
            }
            Stmt::Spawn { body, .. } => {
                inline_in_block(body, true, callees, counter, depth, scope)?;
            }
            Stmt::Decl { name, .. } => scope.push(name.clone()),
            _ => {}
        }
        if in_spawn {
            // Lift calls out of this statement's expressions.
            let mut prelude = Vec::new();
            lift_calls_in_stmt(&mut s, callees, counter, depth, &mut prelude, scope)?;
            out.extend(prelude);
        }
        out.push(s);
    }
    b.stmts = out;
    scope.truncate(mark);
    Ok(())
}

/// Replace every inlinable call in the statement's expressions with a
/// fresh temporary, emitting the binding statements into `prelude`.
fn lift_calls_in_stmt(
    s: &mut Stmt,
    callees: &HashMap<String, Function>,
    counter: &mut u32,
    depth: u32,
    prelude: &mut Vec<Stmt>,
    scope: &[String],
) -> Result<(), CompileError> {
    match s {
        Stmt::Decl { init: Some(e), .. } | Stmt::Return(Some(e), _) => {
            lift_calls(e, callees, counter, depth, prelude, scope)
        }
        Stmt::Assign { target, value, .. } => {
            lift_calls(target, callees, counter, depth, prelude, scope)?;
            lift_calls(value, callees, counter, depth, prelude, scope)
        }
        Stmt::If { cond, .. } => lift_calls(cond, callees, counter, depth, prelude, scope),
        Stmt::While { cond, .. } | Stmt::DoWhile { cond, .. } => {
            // Calls in loop conditions would need per-iteration
            // re-evaluation; lifting once would change semantics.
            let mut has_call = false;
            crate::sema::walk_expr(cond, &mut |e| {
                if let Expr::Call { name, .. } = e {
                    if callees.contains_key(name) {
                        has_call = true;
                    }
                }
            });
            if has_call {
                return Err(CompileError::sema(
                    "calls in parallel loop conditions cannot be inlined; \
                     hoist the call into the loop body",
                    cond.span(),
                ));
            }
            Ok(())
        }
        Stmt::For { cond, step, init, .. } => {
            for part in [init.as_deref_mut(), step.as_deref_mut()].into_iter().flatten() {
                lift_calls_in_stmt(part, callees, counter, depth, prelude, scope)?;
            }
            if let Some(c) = cond {
                let mut has_call = false;
                crate::sema::walk_expr(c, &mut |e| {
                    if let Expr::Call { name, .. } = e {
                        if callees.contains_key(name) {
                            has_call = true;
                        }
                    }
                });
                if has_call {
                    return Err(CompileError::sema(
                        "calls in parallel loop conditions cannot be inlined",
                        c.span(),
                    ));
                }
            }
            Ok(())
        }
        Stmt::Expr(e) => lift_calls(e, callees, counter, depth, prelude, scope),
        _ => Ok(()),
    }
}

fn lift_calls(
    e: &mut Expr,
    callees: &HashMap<String, Function>,
    counter: &mut u32,
    depth: u32,
    prelude: &mut Vec<Stmt>,
    scope: &[String],
) -> Result<(), CompileError> {
    // Depth-first: inner calls first.
    match e {
        Expr::Unary { e, .. } | Expr::Deref(e) | Expr::AddrOf(e, _) | Expr::Cast { e, .. } => {
            lift_calls(e, callees, counter, depth, prelude, scope)?
        }
        Expr::Binary { l, r, .. } => {
            lift_calls(l, callees, counter, depth, prelude, scope)?;
            lift_calls(r, callees, counter, depth, prelude, scope)?;
        }
        Expr::Ternary { c, t, e: ee } => {
            lift_calls(c, callees, counter, depth, prelude, scope)?;
            // Calls in ternary arms are conditionally evaluated; lifting
            // them would evaluate unconditionally. Keep it strict.
            let check = |x: &Expr| -> Result<(), CompileError> {
                let mut has = false;
                crate::sema::walk_expr(x, &mut |e| {
                    if let Expr::Call { name, .. } = e {
                        if callees.contains_key(name) {
                            has = true;
                        }
                    }
                });
                if has {
                    Err(CompileError::sema(
                        "calls in parallel ternary arms cannot be inlined; \
                         use an if statement",
                        x.span(),
                    ))
                } else {
                    Ok(())
                }
            };
            check(t)?;
            check(ee)?;
        }
        Expr::Index { base, idx } => {
            lift_calls(base, callees, counter, depth, prelude, scope)?;
            lift_calls(idx, callees, counter, depth, prelude, scope)?;
        }
        Expr::Ps { local, base, .. } => {
            lift_calls(local, callees, counter, depth, prelude, scope)?;
            lift_calls(base, callees, counter, depth, prelude, scope)?;
        }
        Expr::Psm { local, target, .. } => {
            lift_calls(local, callees, counter, depth, prelude, scope)?;
            lift_calls(target, callees, counter, depth, prelude, scope)?;
        }
        Expr::Call { args, .. } => {
            for a in args.iter_mut() {
                lift_calls(a, callees, counter, depth, prelude, scope)?;
            }
        }
        _ => {}
    }

    // Now handle this node if it is itself an inlinable call.
    if let Expr::Call { name, args, span } = e {
        let Some(callee) = callees.get(name.as_str()) else {
            return Ok(()); // builtin (print/alloc): sema's rules apply
        };
        if depth >= MAX_DEPTH {
            return Err(CompileError::sema(
                format!(
                    "call chain through `{name}` in parallel code is too deep \
                     (recursive functions need the cactus stack, paper §IV-E)"
                ),
                *span,
            ));
        }
        if callee.params.len() != args.len() {
            // Let lowering produce its arity diagnostic.
            return Ok(());
        }
        check_hygiene(callee, scope, *span)?;
        match shape_of(callee) {
            Some(Shape::Expr(body_expr)) => {
                let k = *counter;
                *counter += 1;
                // Bind arguments once.
                let mut subst: HashMap<String, String> = HashMap::new();
                for (p, a) in callee.params.iter().zip(args.iter()) {
                    let tmp = format!("__inl{k}_{}", p.name);
                    prelude.push(Stmt::Decl {
                        name: tmp.clone(),
                        ty: p.ty.clone(),
                        array: None,
                        init: Some(a.clone()),
                        span: *span,
                    });
                    subst.insert(p.name.clone(), tmp);
                }
                let mut inlined = body_expr.clone();
                rename_idents(&mut inlined, &subst);
                // Inner calls inside the inlined expression resolve at
                // depth + 1.
                lift_calls(&mut inlined, callees, counter, depth + 1, prelude, scope)?;
                let ret_tmp = format!("__inl{k}_ret");
                prelude.push(Stmt::Decl {
                    name: ret_tmp.clone(),
                    ty: callee.ret.clone(),
                    array: None,
                    init: Some(inlined),
                    span: *span,
                });
                *e = Expr::Ident(ret_tmp, *span);
            }
            Some(Shape::Block(body)) => {
                let k = *counter;
                *counter += 1;
                let mut subst: HashMap<String, String> = HashMap::new();
                for (p, a) in callee.params.iter().zip(args.iter()) {
                    let tmp = format!("__inl{k}_{}", p.name);
                    prelude.push(Stmt::Decl {
                        name: tmp.clone(),
                        ty: p.ty.clone(),
                        array: None,
                        init: Some(a.clone()),
                        span: *span,
                    });
                    subst.insert(p.name.clone(), tmp);
                }
                let mut inlined = body.clone();
                rename_block(&mut inlined, &mut subst, k);
                // Resolve nested calls inside the inlined body.
                inline_block_at_depth(&mut inlined, callees, counter, depth + 1, scope)?;
                prelude.push(Stmt::Block(inlined));
                // The call expression itself becomes a no-op constant.
                *e = Expr::IntLit(0);
            }
            None => {
                return Err(CompileError::sema(
                    format!(
                        "`{name}` cannot be inlined into parallel code: only \
                         single-`return expr;` functions and return-free void \
                         procedures are supported without the parallel cactus \
                         stack (paper §IV-E)"
                    ),
                    *span,
                ));
            }
        }
    }
    Ok(())
}

/// Inline calls inside an already-substituted body block (procedures may
/// call further functions).
fn inline_block_at_depth(
    b: &mut Block,
    callees: &HashMap<String, Function>,
    counter: &mut u32,
    depth: u32,
    scope: &[String],
) -> Result<(), CompileError> {
    let mut out = Vec::with_capacity(b.stmts.len());
    for mut s in std::mem::take(&mut b.stmts) {
        match &mut s {
            Stmt::If { then, els, .. } => {
                inline_block_at_depth(then, callees, counter, depth, scope)?;
                if let Some(e) = els {
                    inline_block_at_depth(e, callees, counter, depth, scope)?;
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                inline_block_at_depth(body, callees, counter, depth, scope)?
            }
            Stmt::Block(inner) => inline_block_at_depth(inner, callees, counter, depth, scope)?,
            _ => {}
        }
        let mut prelude = Vec::new();
        lift_calls_in_stmt(&mut s, callees, counter, depth, &mut prelude, scope)?;
        out.extend(prelude);
        out.push(s);
    }
    b.stmts = out;
    Ok(())
}

/// Rename identifier occurrences per the substitution map.
fn rename_idents(e: &mut Expr, subst: &HashMap<String, String>) {
    match e {
        Expr::Ident(n, _) => {
            if let Some(r) = subst.get(n) {
                *n = r.clone();
            }
        }
        Expr::Unary { e, .. } | Expr::Deref(e) | Expr::AddrOf(e, _) | Expr::Cast { e, .. } => {
            rename_idents(e, subst)
        }
        Expr::Binary { l, r, .. } => {
            rename_idents(l, subst);
            rename_idents(r, subst);
        }
        Expr::Ternary { c, t, e } => {
            rename_idents(c, subst);
            rename_idents(t, subst);
            rename_idents(e, subst);
        }
        Expr::Index { base, idx } => {
            rename_idents(base, subst);
            rename_idents(idx, subst);
        }
        Expr::Call { args, .. } => {
            for a in args {
                rename_idents(a, subst);
            }
        }
        Expr::Ps { local, base, .. } => {
            rename_idents(local, subst);
            rename_idents(base, subst);
        }
        Expr::Psm { local, target, .. } => {
            rename_idents(local, subst);
            rename_idents(target, subst);
        }
        _ => {}
    }
}

/// Rename a procedure body: parameters per `subst`, plus every local
/// declaration (and its uses) with a unique `__inlK_` prefix.
fn rename_block(b: &mut Block, subst: &mut HashMap<String, String>, k: u32) {
    for s in &mut b.stmts {
        rename_stmt(s, subst, k);
    }
}

fn rename_stmt(s: &mut Stmt, subst: &mut HashMap<String, String>, k: u32) {
    match s {
        Stmt::Decl { name, init, .. } => {
            if let Some(e) = init {
                rename_idents(e, subst);
            }
            let fresh = format!("__inl{k}_{name}");
            subst.insert(name.clone(), fresh.clone());
            *name = fresh;
        }
        Stmt::Assign { target, value, .. } => {
            rename_idents(target, subst);
            rename_idents(value, subst);
        }
        Stmt::If { cond, then, els } => {
            rename_idents(cond, subst);
            rename_block(then, &mut subst.clone(), k);
            if let Some(e) = els {
                rename_block(e, &mut subst.clone(), k);
            }
        }
        Stmt::While { cond, body } | Stmt::DoWhile { body, cond } => {
            rename_idents(cond, subst);
            rename_block(body, &mut subst.clone(), k);
        }
        Stmt::For { init, cond, step, body } => {
            let mut inner = subst.clone();
            if let Some(i) = init {
                rename_stmt(i, &mut inner, k);
            }
            if let Some(c) = cond {
                rename_idents(c, &inner);
            }
            if let Some(st) = step {
                rename_stmt(st, &mut inner, k);
            }
            rename_block(body, &mut inner, k);
        }
        Stmt::Expr(e) => rename_idents(e, subst),
        Stmt::Block(b) => rename_block(b, &mut subst.clone(), k),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(src: &str) -> Result<Program, CompileError> {
        let mut p = parse(src).unwrap();
        inline_parallel_calls(&mut p)?;
        Ok(p)
    }

    #[test]
    fn expression_function_inlined() {
        let p = run(
            "int sq(int x) { return x * x; }
             int A[8];
             void main() { spawn(0, 7) { A[$] = sq($ + 1); } }",
        )
        .unwrap();
        // The spawn body now contains decls and no Call to sq.
        let main = p.function("main").unwrap();
        let Stmt::Spawn { body, .. } = &main.body.stmts[0] else { panic!() };
        let mut calls = 0;
        crate::sema::walk_exprs(body, &mut |e| {
            if matches!(e, Expr::Call { .. }) {
                calls += 1;
            }
        });
        assert_eq!(calls, 0, "call replaced: {body:#?}");
        assert!(body.stmts.len() >= 3, "arg bind + ret bind + assignment");
    }

    #[test]
    fn nested_expression_calls_inline() {
        run(
            "int inc(int x) { return x + 1; }
             int twice(int x) { return inc(inc(x)); }
             int A[8];
             void main() { spawn(0, 7) { A[$] = twice($); } }",
        )
        .unwrap();
    }

    #[test]
    fn void_procedure_inlined() {
        let p = run(
            "int A[8];
             void bump(int i, int d) { int t = A[i]; A[i] = t + d; }
             void main() { spawn(0, 7) { bump($, 3); } }",
        )
        .unwrap();
        let main = p.function("main").unwrap();
        let Stmt::Spawn { body, .. } = &main.body.stmts[0] else { panic!() };
        let mut calls = 0;
        crate::sema::walk_exprs(body, &mut |e| {
            if matches!(e, Expr::Call { .. }) {
                calls += 1;
            }
        });
        assert_eq!(calls, 0);
    }

    #[test]
    fn recursion_rejected_with_cactus_hint() {
        let err = run(
            "int fact(int n) { return n <= 1 ? 1 : n; }
             int looped(int n) { return helper(n); }
             int helper(int n) { return looped(n); }
             int A[4];
             void main() { spawn(0, 3) { A[$] = looped($); } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("cactus"), "{err}");
    }

    #[test]
    fn uninlinable_shapes_get_clear_errors() {
        let err = run(
            "int f(int n) { int acc = 0; for (int i = 0; i < n; i++) { acc += i; } return acc; }
             int A[4];
             void main() { spawn(0, 3) { A[$] = f($); } }",
        )
        .unwrap_err();
        assert!(err.to_string().contains("cannot be inlined"), "{err}");
    }

    #[test]
    fn serial_calls_left_alone() {
        let p = run(
            "int sq(int x) { return x * x; }
             void main() { print(sq(4)); }",
        )
        .unwrap();
        let main = p.function("main").unwrap();
        let mut calls = 0;
        crate::sema::walk_exprs(&main.body, &mut |e| {
            if let Expr::Call { name, .. } = e {
                if name == "sq" {
                    calls += 1;
                }
            }
        });
        assert_eq!(calls, 1, "serial code keeps the real call");
    }
}
